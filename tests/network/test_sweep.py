"""The sweep harness and the ``repro sweep`` CLI subcommand."""

import csv
import json

import pytest

from repro.cli import main
from repro.network.sweep import (
    CurvePoint,
    PointSpec,
    SweepRecord,
    nearest_rank_p95,
    parse_topology,
    run_point,
    run_sweep,
    saturation_curves,
    write_csv,
    write_json,
)


class TestParseTopology:
    def test_hypercube_specs(self):
        assert parse_topology("Q:4").num_nodes == 16
        assert parse_topology("hypercube:3").num_nodes == 8

    def test_factor_spec(self):
        topo = parse_topology("11:6")
        assert topo.name == "Q_6(11)"
        assert topo.num_nodes == 21  # F(8)

    def test_bad_specs(self):
        for spec in ("Q", "Q:x", "xyz:4", ":4"):
            with pytest.raises(ValueError):
                parse_topology(spec)

    def test_cached(self):
        assert parse_topology("Q:4") is parse_topology("Q:4")


class TestRunPoint:
    def test_single_point(self):
        rec = run_point(PointSpec(topology="11:5", load=0.3, inject_window=16))
        assert isinstance(rec, SweepRecord)
        assert rec.topology == "Q_5(11)"
        assert rec.injected == round(0.3 * rec.nodes * 16)
        assert rec.delivered == rec.injected
        assert rec.avg_latency >= 1.0
        assert 0 < rec.p95_latency <= rec.max_latency

    def test_unknown_router(self):
        with pytest.raises(ValueError, match="unknown router"):
            run_point(PointSpec(topology="Q:3", router="teleport"))

    def test_bad_load(self):
        with pytest.raises(ValueError, match="load"):
            run_point(PointSpec(topology="Q:3", load=0.0))


class TestNearestRankP95:
    def test_twenty_samples_give_the_19th_value_not_the_max(self):
        """Regression: the old ``(95 * n) // 100`` index returned the max
        for n = 20 (index 19); nearest rank is the 19th value (index 18)."""
        assert nearest_rank_p95(list(range(1, 21))) == 19.0

    def test_exact_percentile_boundaries(self):
        assert nearest_rank_p95(list(range(1, 101))) == 95.0
        assert nearest_rank_p95([7]) == 7.0
        assert nearest_rank_p95([3, 1, 2]) == 3.0  # sorts internally

    def test_empty_sample_is_defined_as_zero(self):
        """The documented contract for zero-delivered points: an empty
        latency sample reports 0.0, for both list and tuple inputs."""
        assert nearest_rank_p95([]) == 0.0
        assert nearest_rank_p95(()) == 0.0

    def test_never_exceeds_the_max(self):
        for n in range(1, 60):
            lat = list(range(n))
            assert nearest_rank_p95(lat) <= max(lat)


class TestZeroDeliveredPoints:
    def test_all_destinations_dead_reports_zero_latencies(self):
        """Every packet routed to a node dead at cycle 0 drops at
        injection: delivered == 0 with injected > 0 must condense to 0.0
        latency columns, not an IndexError mid-grid."""
        rec = run_point(PointSpec(
            topology="Q:2", load=1.0, inject_window=8,
            faults="n1,n2,n3",
        ))
        assert rec.injected > 0
        assert rec.delivered == 0
        assert rec.delivery_rate == 0.0
        assert rec.avg_latency == 0.0
        assert rec.p95_latency == 0.0
        assert rec.max_latency == 0

    def test_all_sources_dead_is_an_empty_point(self):
        """Killing every node silences every source: nothing is even
        injected, and the point still condenses cleanly."""
        rec = run_point(PointSpec(
            topology="Q:2", load=1.0, inject_window=8,
            faults="n0,n1,n2,n3",
        ))
        assert rec.injected == 0 and rec.delivered == 0
        assert rec.p95_latency == 0.0
        # delivery_rate is vacuously 1.0 on an empty point (0 of 0)
        assert rec.delivery_rate == 1.0


class TestCollectiveAxis:
    def test_broadcast_point(self):
        rec = run_point(PointSpec(topology="Q:4", collective="broadcast"))
        assert rec.collective == "broadcast"
        assert rec.pattern == "-"
        assert rec.rounds == rec.round_bound == 4
        assert rec.injected == rec.delivered == 15  # n - 1 tree messages
        assert rec.delivery_rate == 1.0

    def test_seed_picks_the_root(self):
        """The record must match a direct run_collective at root = seed
        mod n -- comparing outcome fields, not the seed column itself."""
        from repro.network.collectives import run_collective
        from repro.network.sweep import parse_topology as pt

        topo = pt("11:6")
        rec = run_point(PointSpec(topology="11:6", collective="broadcast", seed=5))
        res = run_collective(topo, "broadcast", root=5 % topo.num_nodes)
        assert rec.rounds == res.rounds
        assert rec.cycles == res.result.cycles
        assert rec.avg_latency == res.result.avg_latency
        assert rec.injected == res.result.injected

    def test_pattern_points_have_no_rounds(self):
        rec = run_point(PointSpec(topology="Q:3", load=0.3, inject_window=8))
        assert rec.collective == "" and rec.rounds == 0 and rec.round_bound == 0

    def test_collective_grid_normalises_pattern_and_load_axes(self):
        """One collective entry contributes exactly one point per
        (topology, router, seed) cell, regardless of the pattern/load
        grid around it."""
        records = run_sweep(
            ["Q:4"], patterns=("uniform", "tornado"), loads=(0.2, 0.5),
            collectives=("", "broadcast"), inject_window=8,
        )
        pattern_recs = [r for r in records if not r.collective]
        coll_recs = [r for r in records if r.collective]
        assert len(pattern_recs) == 2 * 2
        assert len(coll_recs) == 1
        assert coll_recs[0].load == 1.0 and coll_recs[0].pattern == "-"
        curves = saturation_curves(records)
        assert len(curves) == 3
        coll_keys = [k for k in curves if k[5]]
        assert coll_keys == [("Q_4", "bfs", "-", "", "", "broadcast")]
        (point,) = curves[coll_keys[0]]
        assert point.rounds == 4.0 and point.round_bound == 4

    def test_collective_under_wormhole_and_faults(self):
        rec = run_point(PointSpec(
            topology="11:5", collective="allgather", faults="n2@3",
            switching="wormhole", num_vcs=2, buffer_depth=4, flits="1-4",
        ))
        assert rec.collective == "allgather"
        assert rec.rounds > rec.round_bound  # tree fallback: gather + scatter
        assert rec.dropped > 0  # the dead node loses tree messages
        assert not rec.deadlocked

    def test_unknown_collective_raises_eagerly(self):
        with pytest.raises(ValueError, match="unknown collective"):
            run_point(PointSpec(topology="Q:3", collective="gossip"))
        with pytest.raises(ValueError, match="unknown collective"):
            run_sweep(["Q:3"], collectives=("gossip",))

    def test_collective_points_are_reproducible(self):
        spec = PointSpec(topology="11:5", collective="ring", seed=3)
        assert run_point(spec) == run_point(spec)


class TestSeedAggregation:
    def test_multi_seed_points_aggregate_not_interleave(self):
        records = run_sweep(
            ["11:5"], loads=(0.2, 0.5), seeds=(0, 1, 2), inject_window=16
        )
        assert len(records) == 2 * 3
        curves = saturation_curves(records)
        assert len(curves) == 1
        (curve,) = curves.values()
        # one aggregated point per load, not one per (load, seed)
        assert [p.load for p in curve] == [0.2, 0.5]
        for point in curve:
            assert isinstance(point, CurvePoint)
            assert point.seeds == 3
            cell = [r for r in records if r.load == point.load]
            lats = [r.avg_latency for r in cell]
            assert min(lats) <= point.avg_latency <= max(lats)
            assert point.std_avg_latency >= 0.0
            assert point.max_queue == max(r.max_queue for r in cell)

    def test_single_seed_std_is_zero(self):
        records = run_sweep(["Q:4"], loads=(0.3,), inject_window=8)
        (curve,) = saturation_curves(records).values()
        assert curve[0].seeds == 1
        assert curve[0].std_avg_latency == 0.0
        assert curve[0].std_throughput == 0.0


class TestFaultAxis:
    def test_degradation_grid(self):
        records = run_sweep(
            ["11:6"],
            routers=("adaptive",),
            loads=(0.2, 0.5),
            faults=("", "rand2s3", "rand4s3"),
            inject_window=16,
        )
        assert len(records) == 2 * 3
        by_plan = {r.faults: r for r in records if r.load == 0.5}
        assert by_plan[""].num_faults == 0
        assert by_plan["rand2s3"].num_faults == 2
        assert by_plan["rand4s3"].num_faults == 4
        # graceful degradation: faults can only lose traffic, never gain
        assert by_plan["rand4s3"].delivered <= by_plan[""].delivered
        assert by_plan[""].dropped == 0
        curves = saturation_curves(records)
        assert len(curves) == 3  # one curve per fault plan

    def test_fault_point_is_reproducible(self):
        spec = PointSpec(
            topology="11:5", router="adaptive", load=0.4,
            inject_window=16, faults="n2,l0-1@9",
        )
        assert run_point(spec) == run_point(spec)

    def test_eager_fault_validation(self):
        with pytest.raises(ValueError, match="fault token"):
            run_sweep(["Q:3"], faults=("bogus",))
        with pytest.raises(ValueError, match="out of range"):
            run_sweep(["Q:3"], faults=("n99",))


class TestFlowControlAxis:
    def test_wormhole_point(self):
        rec = run_point(PointSpec(
            topology="11:5", load=0.3, inject_window=16,
            switching="wormhole", num_vcs=2, buffer_depth=4, flits="1-4",
        ))
        assert rec.switching == "wormhole"
        assert rec.num_vcs == 2 and rec.buffer_depth == 4
        assert rec.flits == "1-4"
        assert rec.delivered == rec.injected
        assert not rec.deadlocked and rec.stalled == 0
        assert rec.max_queue <= 4

    def test_sf_points_are_normalised_and_deduped(self):
        """A mixed grid never re-runs identical store-and-forward points
        across the vcs/buffers/flits axes."""
        records = run_sweep(
            ["11:5"], loads=(0.2,), inject_window=8,
            switching=("sf", "wormhole"), buffers=(2, 8), flits=("2",),
        )
        sf = [r for r in records if r.switching == "sf"]
        worm = [r for r in records if r.switching == "wormhole"]
        assert len(sf) == 1 and len(worm) == 2
        assert sf[0].buffer_depth == 0 and sf[0].flits == "1"

    def test_wormhole_latency_exceeds_sf_on_the_same_cell(self):
        """Multi-flit serialisation costs cycles: the wormhole curve sits
        above the single-flit store-and-forward curve."""
        records = run_sweep(
            ["11:6"], loads=(0.4,), inject_window=16, seeds=(0,),
            switching=("sf", "wormhole"), buffers=(4,), flits=("4",),
        )
        by_mode = {r.switching: r for r in records}
        assert by_mode["wormhole"].avg_latency > by_mode["sf"].avg_latency

    def test_curves_key_on_flow_tag(self):
        records = run_sweep(
            ["11:5"], loads=(0.2, 0.4), inject_window=8,
            switching=("sf", "wormhole"), vcs=(1, 2), flits=("2",),
        )
        curves = saturation_curves(records)
        # one sf curve + one wormhole curve per VC count
        assert len(curves) == 3
        tags = {key[4] for key in curves}
        assert "" in tags
        assert "wormhole:v1:b4:f2" in tags and "wormhole:v2:b4:f2" in tags
        for key, curve in curves.items():
            assert [p.load for p in curve] == [0.2, 0.4]
            for point in curve:
                assert point.deadlock_rate in (0.0, 1.0)

    def test_deadlocked_point_is_recorded_not_hung(self):
        """A saturating single-VC wormhole burst on the non-isometric
        Q_5(1010) deadlocks under BFS routing; the sweep records it."""
        rec = run_point(PointSpec(
            topology="1010:5", router="bfs", load=20.0, inject_window=1,
            switching="wormhole", num_vcs=1, buffer_depth=1, flits="4",
        ))
        assert rec.deadlocked
        assert rec.stalled > 0
        assert rec.delivered + rec.dropped + rec.stalled == rec.injected

    def test_eager_flow_validation(self):
        with pytest.raises(ValueError, match="unknown switching mode"):
            run_sweep(["Q:3"], switching=("warp",))
        with pytest.raises(ValueError, match="buffer_depth"):
            run_sweep(["Q:3"], switching=("wormhole",), buffers=(0,))
        with pytest.raises(ValueError, match="flits"):
            run_sweep(["Q:3"], switching=("wormhole",), flits=("9-2",))


class TestBatchAxis:
    GRID = dict(
        topologies=["Q:4", "11:5"],
        patterns=("uniform", "tornado"),
        loads=(0.2, 0.5),
        seeds=(0, 1),
        inject_window=8,
    )

    def test_batched_records_are_bit_identical(self):
        from dataclasses import replace

        serial = run_sweep(**self.GRID)
        batched = run_sweep(batch=16, **self.GRID)
        assert [replace(r, batch=1) for r in batched] == serial
        assert all(r.batch == 1 for r in serial)
        # 8 points per topology co-batch together
        assert {r.batch for r in batched} == {8}

    def test_batch_chunks_to_the_requested_size(self):
        batched = run_sweep(batch=3, **self.GRID)
        # 8 points per topology chunk as 3 + 3 + 2
        assert sorted({r.batch for r in batched}) == [2, 3]

    def test_batched_multiprocessing_matches_serial(self):
        assert run_sweep(batch=4, processes=2, **self.GRID) == run_sweep(
            batch=4, **self.GRID
        )

    def test_only_collective_points_run_alone(self):
        """Every open-loop pattern point batches natively -- sf and
        wormhole co-batch into one pack -- while closed-loop collective
        points carry batch=1."""
        records = run_sweep(
            ["11:5"], patterns=("uniform",), loads=(0.2, 0.4),
            switching=("sf", "wormhole"), flits=("2",),
            collectives=("", "broadcast"), inject_window=8, batch=8,
        )
        by_kind = {}
        for r in records:
            kind = "coll" if r.collective else r.switching
            by_kind.setdefault(kind, set()).add(r.batch)
        assert by_kind["sf"] == {4}  # 2 sf + 2 wormhole loads, one pack
        assert by_kind["wormhole"] == {4}
        assert by_kind["coll"] == {1}

    def test_batched_faulted_grid_matches(self):
        from dataclasses import replace

        grid = dict(
            topologies=["11:5"], routers=("adaptive", "bfs"),
            loads=(0.2, 0.5), faults=("", "rand2s3"), inject_window=16,
        )
        serial = run_sweep(**grid)
        batched = run_sweep(batch=8, **grid)
        assert [replace(r, batch=1) for r in batched] == serial

    def test_bad_batch_raises(self):
        with pytest.raises(ValueError, match="batch"):
            run_sweep(["Q:3"], batch=0)


class TestRunSweep:
    def test_grid_shape(self):
        records = run_sweep(
            ["Q:4", "11:4"],
            patterns=("uniform", "tornado"),
            loads=(0.2, 0.5),
            inject_window=8,
        )
        assert len(records) == 2 * 2 * 2
        curves = saturation_curves(records)
        assert len(curves) == 4
        for curve in curves.values():
            assert [r.load for r in curve] == [0.2, 0.5]

    def test_latency_grows_with_load(self):
        records = run_sweep(
            ["11:7"], patterns=("hotspot",), loads=(0.05, 0.9), inject_window=32
        )
        low, high = records
        assert high.avg_latency > low.avg_latency
        assert high.max_queue >= low.max_queue

    def test_multiprocessing_matches_serial(self):
        kwargs = dict(
            topologies=["Q:4", "11:5"],
            patterns=("uniform", "bursty"),
            loads=(0.3,),
            inject_window=8,
        )
        assert run_sweep(**kwargs) == run_sweep(processes=2, **kwargs)

    def test_eager_validation(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            run_sweep(["Q:3"], patterns=("nope",))
        with pytest.raises(ValueError, match="unknown router"):
            run_sweep(["Q:3"], routers=("nope",))


class TestWriters:
    @pytest.fixture(scope="class")
    def records(self):
        return run_sweep(["Q:3"], loads=(0.2, 0.4), inject_window=8)

    def test_csv_roundtrip(self, records, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(records, str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(records)
        assert rows[0]["topology"] == "Q_3"
        assert float(rows[0]["load"]) == 0.2

    def test_json_roundtrip(self, records, tmp_path):
        path = tmp_path / "out.json"
        write_json(records, str(path))
        data = json.loads(path.read_text())
        assert len(data) == len(records)
        assert data[0]["nodes"] == 8


class TestSweepCli:
    def test_fibonacci_vs_hypercube_four_patterns(self, tmp_path, capsys):
        """The acceptance scenario: Fibonacci cube vs hypercube saturation
        curves under four traffic patterns, dumped to CSV."""
        csv_path = tmp_path / "curves.csv"
        rc = main([
            "sweep",
            "--topo", "Q:5",
            "--topo", "11:5",
            "--patterns", "uniform,transpose,tornado,hotspot",
            "--loads", "0.1,0.4",
            "--window", "16",
            "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q_5 / bfs / uniform" in out
        assert "Q_5(11) / bfs / tornado" in out
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2 * 4 * 2
        assert {r["topology"] for r in rows} == {"Q_5", "Q_5(11)"}
        assert {r["pattern"] for r in rows} == {
            "uniform", "transpose", "tornado", "hotspot"
        }

    def test_faults_axis_cli(self, tmp_path, capsys):
        csv_path = tmp_path / "degradation.csv"
        rc = main([
            "sweep",
            "--topo", "11:5",
            "--routers", "adaptive",
            "--patterns", "uniform",
            "--loads", "0.2,0.5",
            "--faults", "rand2s3",
            "--window", "16",
            "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults[rand2s3]" in out
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert {r["faults"] for r in rows} == {"rand2s3"}
        assert {r["num_faults"] for r in rows} == {"2"}
        assert "dropped" in rows[0] and "misroutes" in rows[0]

    def test_switching_axis_cli(self, tmp_path, capsys):
        csv_path = tmp_path / "flow.csv"
        rc = main([
            "sweep",
            "--topo", "11:5",
            "--patterns", "uniform",
            "--loads", "0.2,0.5",
            "--switching", "sf,wormhole",
            "--vcs", "2",
            "--buffer", "4",
            "--flits", "1-4",
            "--window", "16",
            "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wormhole:v2:b4:f1-4" in out
        assert "dlock" in out
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert {r["switching"] for r in rows} == {"sf", "wormhole"}
        assert "stalled" in rows[0] and "deadlocked" in rows[0]

    def test_collective_axis_cli(self, tmp_path, capsys):
        csv_path = tmp_path / "coll.csv"
        rc = main([
            "sweep",
            "--topo", "Q:4",
            "--topo", "11:5",
            "--collective", "broadcast",
            "--collective", "alltoall",
            "--seeds", "0,1",
            "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "coll[broadcast: 4 rounds, bound 4]" in out
        assert "coll[alltoall:" in out
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2 * 2 * 2  # topo x collective x seed
        assert {r["collective"] for r in rows} == {"broadcast", "alltoall"}
        assert all(int(r["rounds"]) >= int(r["round_bound"]) for r in rows)

    def test_bad_collective_is_a_clean_error(self, capsys):
        rc = main(["sweep", "--topo", "Q:3", "--collective", "gossip"])
        assert rc == 2
        assert "collective" in capsys.readouterr().err

    def test_bad_switching_is_a_clean_error(self, capsys):
        rc = main(["sweep", "--topo", "Q:3", "--switching", "warp"])
        assert rc == 2
        assert "switching" in capsys.readouterr().err

    def test_bad_fault_spec_is_a_clean_error(self, capsys):
        rc = main(["sweep", "--topo", "Q:3", "--faults", "wat"])
        assert rc == 2
        assert "fault token" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        json_path = tmp_path / "r.json"
        rc = main([
            "sweep", "--topo", "Q:4", "--patterns", "uniform",
            "--loads", "0.3", "--window", "8", "--json", str(json_path),
        ])
        assert rc == 0
        assert len(json.loads(json_path.read_text())) == 1
