"""The sweep harness and the ``repro sweep`` CLI subcommand."""

import csv
import json

import pytest

from repro.cli import main
from repro.network.sweep import (
    PointSpec,
    SweepRecord,
    parse_topology,
    run_point,
    run_sweep,
    saturation_curves,
    write_csv,
    write_json,
)


class TestParseTopology:
    def test_hypercube_specs(self):
        assert parse_topology("Q:4").num_nodes == 16
        assert parse_topology("hypercube:3").num_nodes == 8

    def test_factor_spec(self):
        topo = parse_topology("11:6")
        assert topo.name == "Q_6(11)"
        assert topo.num_nodes == 21  # F(8)

    def test_bad_specs(self):
        for spec in ("Q", "Q:x", "xyz:4", ":4"):
            with pytest.raises(ValueError):
                parse_topology(spec)

    def test_cached(self):
        assert parse_topology("Q:4") is parse_topology("Q:4")


class TestRunPoint:
    def test_single_point(self):
        rec = run_point(PointSpec(topology="11:5", load=0.3, inject_window=16))
        assert isinstance(rec, SweepRecord)
        assert rec.topology == "Q_5(11)"
        assert rec.injected == round(0.3 * rec.nodes * 16)
        assert rec.delivered == rec.injected
        assert rec.avg_latency >= 1.0
        assert 0 < rec.p95_latency <= rec.max_latency

    def test_unknown_router(self):
        with pytest.raises(ValueError, match="unknown router"):
            run_point(PointSpec(topology="Q:3", router="teleport"))

    def test_bad_load(self):
        with pytest.raises(ValueError, match="load"):
            run_point(PointSpec(topology="Q:3", load=0.0))


class TestRunSweep:
    def test_grid_shape(self):
        records = run_sweep(
            ["Q:4", "11:4"],
            patterns=("uniform", "tornado"),
            loads=(0.2, 0.5),
            inject_window=8,
        )
        assert len(records) == 2 * 2 * 2
        curves = saturation_curves(records)
        assert len(curves) == 4
        for curve in curves.values():
            assert [r.load for r in curve] == [0.2, 0.5]

    def test_latency_grows_with_load(self):
        records = run_sweep(
            ["11:7"], patterns=("hotspot",), loads=(0.05, 0.9), inject_window=32
        )
        low, high = records
        assert high.avg_latency > low.avg_latency
        assert high.max_queue >= low.max_queue

    def test_multiprocessing_matches_serial(self):
        kwargs = dict(
            topologies=["Q:4", "11:5"],
            patterns=("uniform", "bursty"),
            loads=(0.3,),
            inject_window=8,
        )
        assert run_sweep(**kwargs) == run_sweep(processes=2, **kwargs)

    def test_eager_validation(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            run_sweep(["Q:3"], patterns=("nope",))
        with pytest.raises(ValueError, match="unknown router"):
            run_sweep(["Q:3"], routers=("nope",))


class TestWriters:
    @pytest.fixture(scope="class")
    def records(self):
        return run_sweep(["Q:3"], loads=(0.2, 0.4), inject_window=8)

    def test_csv_roundtrip(self, records, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(records, str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(records)
        assert rows[0]["topology"] == "Q_3"
        assert float(rows[0]["load"]) == 0.2

    def test_json_roundtrip(self, records, tmp_path):
        path = tmp_path / "out.json"
        write_json(records, str(path))
        data = json.loads(path.read_text())
        assert len(data) == len(records)
        assert data[0]["nodes"] == 8


class TestSweepCli:
    def test_fibonacci_vs_hypercube_four_patterns(self, tmp_path, capsys):
        """The acceptance scenario: Fibonacci cube vs hypercube saturation
        curves under four traffic patterns, dumped to CSV."""
        csv_path = tmp_path / "curves.csv"
        rc = main([
            "sweep",
            "--topo", "Q:5",
            "--topo", "11:5",
            "--patterns", "uniform,transpose,tornado,hotspot",
            "--loads", "0.1,0.4",
            "--window", "16",
            "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q_5 / bfs / uniform" in out
        assert "Q_5(11) / bfs / tornado" in out
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2 * 4 * 2
        assert {r["topology"] for r in rows} == {"Q_5", "Q_5(11)"}
        assert {r["pattern"] for r in rows} == {
            "uniform", "transpose", "tornado", "hotspot"
        }

    def test_json_output(self, tmp_path, capsys):
        json_path = tmp_path / "r.json"
        rc = main([
            "sweep", "--topo", "Q:4", "--patterns", "uniform",
            "--loads", "0.3", "--window", "8", "--json", str(json_path),
        ])
        assert rc == 0
        assert len(json.loads(json_path.read_text())) == 1
