"""The traffic-pattern library: shape, determinism, topology-awareness."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.topology import topology_of
from repro.network.traffic import (
    PATTERNS,
    bit_reversal_traffic,
    bursty_traffic,
    flit_sizes,
    hotspot_traffic,
    make_traffic,
    permutation_traffic,
    tornado_traffic,
    transpose_traffic,
    uniform_traffic,
)
from tests.conftest import path_graph


@pytest.fixture(scope="module")
def gamma6():
    return topology_of(("11", 6))


@pytest.fixture(scope="module")
def q4():
    return topology_of(hypercube(4), name="Q4")


class TestEveryPattern:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_wellformed(self, gamma6, pattern):
        out = make_traffic(pattern, gamma6, 80, 10, seed=1)
        assert len(out) == 80
        n = gamma6.num_nodes
        for cycle, src, dst in out:
            assert cycle >= 0
            assert 0 <= src < n and 0 <= dst < n
            assert src != dst
        assert out == sorted(out, key=lambda t: t[0])

    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_deterministic_and_seed_sensitive(self, gamma6, pattern):
        a = make_traffic(pattern, gamma6, 60, 30, seed=4)
        b = make_traffic(pattern, gamma6, 60, 30, seed=4)
        assert a == b
        # different seed must change *something* (cycles at minimum)
        c = make_traffic(pattern, gamma6, 60, 30, seed=5)
        assert a != c

    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_inject_window_zero_raises(self, gamma6, pattern):
        with pytest.raises(ValueError):
            make_traffic(pattern, gamma6, 10, 0)

    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_single_node_raises(self, pattern):
        g = path_graph(1)
        g.set_labels(["x"])
        topo = topology_of(g, name="dot")
        with pytest.raises(ValueError):
            make_traffic(pattern, topo, 5, 5)

    def test_unknown_pattern_raises(self, gamma6):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            make_traffic("nope", gamma6, 5, 5)


class TestDegenerateTopologyGuards:
    """Regression: tornado and hotspot used to fall into their generation
    loops on degenerate topologies -- tornado emitting src == dst
    self-traffic when its stride wraps, hotspot dying deep in the draw
    loop with a raw ``randrange(0)``.  Both now reject up front with a
    message naming the degeneracy."""

    def _one_node(self):
        g = path_graph(1)
        g.set_labels(["x"])
        return topology_of(g, name="dot")

    def test_tornado_single_node_names_the_wrap(self):
        with pytest.raises(ValueError, match="stride 1 wraps"):
            tornado_traffic(self._one_node(), 5, 5)

    def test_tornado_never_emits_self_traffic(self, gamma6):
        out = tornado_traffic(gamma6, 200, 8, seed=3)
        assert all(src != dst for _, src, dst in out)

    def test_hotspot_single_node_rejected_up_front(self):
        # the guard fires with the argument checks, before any drawing:
        # even a 0-packet request reports the topology problem
        with pytest.raises(ValueError, match="at least two nodes"):
            hotspot_traffic(self._one_node(), 0, 5)

    def test_hotspot_full_fraction_on_two_nodes(self):
        g = path_graph(2)
        g.set_labels(["a", "b"])
        topo = topology_of(g, name="pair")
        out = hotspot_traffic(topo, 20, 5, seed=2, hotspot=0, fraction=1.0)
        assert all((src, dst) == (1, 0) for _, src, dst in out)

    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    @pytest.mark.parametrize("window", [1, 3, 10, 64])
    def test_every_cycle_inside_the_inject_window(self, gamma6, pattern, window):
        """The documented contract: injection cycles lie in
        [0, inject_window).  Regression for bursty_traffic, whose bursts
        used to run past the window edge and distort the sweep's
        load * nodes * window normalisation."""
        for seed in (0, 6, 23):
            out = make_traffic(pattern, gamma6, 300, window, seed=seed)
            assert all(0 <= c < window for c, _, _ in out), (pattern, seed)


class TestUniform:
    def test_negative_window_raises(self, gamma6):
        with pytest.raises(ValueError):
            uniform_traffic(gamma6, 5, -3)

    def test_negative_packets_raises(self, gamma6):
        with pytest.raises(ValueError):
            uniform_traffic(gamma6, -1, 5)

    def test_cycles_inside_window(self, gamma6):
        out = uniform_traffic(gamma6, 200, 7, seed=2)
        assert all(0 <= c < 7 for c, _, _ in out)


class TestStructuredPatterns:
    def test_transpose_on_hypercube_swaps_halves(self, q4):
        out = transpose_traffic(q4, 50, 1, seed=0)
        for _, s, t in out:
            w = format(s, "04b")
            expected = w[2:] + w[:2]
            if expected != w:  # fixed points are remapped to avoid self
                assert format(t, "04b") == expected

    def test_bit_reversal_on_hypercube(self, q4):
        out = bit_reversal_traffic(q4, 50, 1, seed=0)
        for _, s, t in out:
            w = format(s, "04b")
            if w[::-1] != w:
                assert format(t, "04b") == w[::-1]

    def test_structured_destination_is_function_of_source(self, gamma6):
        for fn in (transpose_traffic, bit_reversal_traffic, tornado_traffic):
            out = fn(gamma6, 120, 5, seed=3)
            dst_of = {}
            for _, s, t in out:
                assert dst_of.setdefault(s, t) == t, fn.__name__

    def test_tornado_stride(self, gamma6):
        n = gamma6.num_nodes
        out = tornado_traffic(gamma6, 60, 4, seed=0)
        for _, s, t in out:
            assert t == (s + n // 2) % n

    def test_permutation_is_fixed_point_free_bijection(self, gamma6):
        out = permutation_traffic(gamma6, 300, 3, seed=8)
        dst_of = {}
        for _, s, t in out:
            assert dst_of.setdefault(s, t) == t
        assert len(set(dst_of.values())) == len(dst_of)


class TestHotspot:
    def test_fraction_one_targets_hotspot_only(self, gamma6):
        out = hotspot_traffic(gamma6, 50, 5, seed=1, hotspot=3, fraction=1.0)
        assert all(t == 3 for _, _, t in out)

    def test_fraction_skews_towards_hotspot(self, gamma6):
        out = hotspot_traffic(gamma6, 400, 5, seed=1, hotspot=0, fraction=0.8)
        hits = sum(1 for _, _, t in out if t == 0)
        assert hits > 200

    def test_bad_args_raise(self, gamma6):
        with pytest.raises(ValueError):
            hotspot_traffic(gamma6, 5, 5, hotspot=gamma6.num_nodes)
        with pytest.raises(ValueError):
            hotspot_traffic(gamma6, 5, 5, fraction=1.5)


class TestBursty:
    def test_bursts_share_pair_on_consecutive_cycles(self, gamma6):
        out = bursty_traffic(gamma6, 200, 20, seed=6, mean_burst=10)
        assert len(out) == 200
        # group by (src, dst): cycles within a burst are consecutive runs
        by_pair = {}
        for c, s, t in out:
            by_pair.setdefault((s, t), []).append(c)
        assert any(len(v) > 1 for v in by_pair.values())

    def test_bad_mean_burst_raises(self, gamma6):
        with pytest.raises(ValueError):
            bursty_traffic(gamma6, 5, 5, mean_burst=0)

    def test_bursts_capped_at_the_window_edge(self, gamma6):
        """A burst starting near the end of the window is truncated, not
        spilled past it: with window=2 and mean_burst=10 most geometric
        bursts would overflow without the cap."""
        out = bursty_traffic(gamma6, 400, 2, seed=0, mean_burst=10)
        assert len(out) == 400
        assert all(0 <= c < 2 for c, _, _ in out)

    def test_capping_is_deterministic(self, gamma6):
        a = bursty_traffic(gamma6, 200, 5, seed=9, mean_burst=8)
        assert a == bursty_traffic(gamma6, 200, 5, seed=9, mean_burst=8)


class TestFlitSizes:
    def test_fixed_spec(self):
        assert flit_sizes(4, "3") == [3, 3, 3, 3]
        assert flit_sizes(3, 2) == [2, 2, 2]
        assert flit_sizes(0, "5") == []

    def test_range_spec_is_deterministic_and_bounded(self):
        a = flit_sizes(500, "2-8", seed=3)
        assert a == flit_sizes(500, "2-8", seed=3)
        assert a != flit_sizes(500, "2-8", seed=4)
        assert all(2 <= f <= 8 for f in a)
        assert len(set(a)) > 1

    def test_bad_specs_raise(self):
        for spec in ("0", "5-2", "x", "1-y", "-3"):
            with pytest.raises(ValueError):
                flit_sizes(5, spec)
        with pytest.raises(ValueError):
            flit_sizes(-1, "2")


def test_simulator_reexports_uniform_traffic():
    """Backwards compatibility: the old import path keeps working."""
    from repro.network.simulator import uniform_traffic as reexported

    assert reexported is uniform_traffic
