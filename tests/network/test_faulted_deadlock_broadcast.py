"""Deadlock analysis and broadcast scheduling on damaged networks.

Exercises :mod:`repro.network.deadlock` and :mod:`repro.network.broadcast`
over both fault views: the masked in-place view
(:meth:`Topology.with_faults`, indices stable, failed nodes isolated) and
the surgical survivor (:func:`faulted_topology`, largest component)."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.broadcast import (
    binomial_broadcast_schedule,
    broadcast_rounds,
    verify_schedule,
)
from repro.network.deadlock import (
    channel_dependency_graph,
    is_deadlock_free,
)
from repro.network.faults import FaultPlan
from repro.network.routing import AdaptiveRouter, BfsRouter, DimensionOrderRouter
from repro.network.topology import faulted_topology, topology_of


def _live_pairs(topo, dead):
    n = topo.num_nodes
    return [
        (s, t)
        for s in range(n)
        for t in range(n)
        if s != t and s not in dead and t not in dead
    ]


class TestDeadlockUnderFaults:
    @pytest.mark.parametrize("spec", [("11", 5), ("111", 5)])
    def test_ecube_stays_deadlock_free_on_masked_cubes(self, spec):
        """Strict dimension order uses channels in increasing dimension on
        any *subset* of links too, so the CDG stays acyclic after faults."""
        topo = topology_of(spec)
        plan = FaultPlan.parse("n1,l0-1", num_nodes=topo.num_nodes)
        # l0-1 may not be an edge of every cube; keep the node fault only then
        if not topo.graph.has_edge(0, 1):
            plan = FaultPlan.parse("n1")
        view = topo.with_faults(plan)
        pairs = _live_pairs(topo, plan.dead_nodes_at(0))
        assert is_deadlock_free(view, DimensionOrderRouter(), pairs=pairs)

    def test_bfs_on_surgical_survivor_is_analysable(self):
        survivor = faulted_topology(topology_of(("11", 6)), 3, seed=2)
        deps = channel_dependency_graph(survivor, BfsRouter())
        assert deps  # routes longer than one hop exist
        assert isinstance(is_deadlock_free(survivor, BfsRouter()), bool)

    def test_adaptive_detours_add_dependencies(self):
        """Misrouting adds channel dependencies the canonical rule never
        creates; the CDG must still be computable over live pairs."""
        topo = topology_of(hypercube(4), name="Q4")
        u, v = topo.graph.index_of("0000"), topo.graph.index_of("1000")
        view = topo.with_faults(FaultPlan(link_faults=((0, u, v),)))
        deps_faulted = channel_dependency_graph(view, AdaptiveRouter())
        deps_clean = channel_dependency_graph(topo, AdaptiveRouter())

        def arcs(d):
            return {(a, b) for a, succs in d.items() for b in succs}

        assert arcs(deps_faulted) - arcs(deps_clean), "detours created no new arcs?"

    def test_dead_endpoint_pairs_are_skipped_not_fatal(self):
        topo = topology_of(("11", 5))
        view = topo.with_faults(FaultPlan.parse("n0"))
        # BFS routes from/to the isolated node fail; the CDG builder skips them
        deps = channel_dependency_graph(view, BfsRouter())
        assert all(0 not in (a, b) for (a, b) in deps)


class TestBroadcastUnderFaults:
    @pytest.mark.parametrize("num_faults", [1, 2, 3])
    def test_broadcast_on_surgical_survivor(self, num_faults):
        """Graceful degradation: the surviving component still broadcasts
        within a small slack of the log2 lower bound."""
        survivor = faulted_topology(topology_of(("11", 7)), num_faults, seed=4)
        rounds, bound = broadcast_rounds(survivor, 0)
        assert rounds >= bound
        assert rounds <= bound + 4, (num_faults, rounds, bound)
        schedule = binomial_broadcast_schedule(survivor, 0)
        assert verify_schedule(survivor, 0, schedule)

    def test_broadcast_on_masked_view_raises_on_unreachable(self):
        """The masked view keeps failed nodes as isolated vertices, so a
        full broadcast is impossible by construction -- the scheduler must
        say so instead of looping."""
        topo = topology_of(("11", 5))
        view = topo.with_faults(FaultPlan.parse("n3"))
        with pytest.raises(ValueError, match="does not reach"):
            binomial_broadcast_schedule(view, 0)

    def test_verify_schedule_rejects_dead_link_sends(self):
        """A pre-fault schedule is invalid on the masked topology as soon
        as it uses a killed link."""
        topo = topology_of(hypercube(3), name="Q3")
        schedule = binomial_broadcast_schedule(topo, 0)
        used = {tuple(sorted(st)) for rnd in schedule for st in rnd}
        u, v = sorted(next(iter(used)))
        faulty = topo.with_faults(FaultPlan(link_faults=((0, u, v),)))
        assert not verify_schedule(faulty, 0, schedule)
