"""Multi-tenant trace-driven workloads: grammar, arbitration, traces,
per-tenant accounting, and the sweep integration.

The bit-identity contract extends to workload points: the reference and
vectorized engines must agree on every per-tenant statistic, a batched
run must match its sequential decomposition, and a two-tenant overlay
sweep must produce byte-identical records through every backend, cached
or not (the PR's acceptance gate).
"""

import json
import math

import pytest

from repro.network.backends import native as native_mod
from repro.network.faults import FaultPlan
from repro.network.service import ResultCache
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.sweep import (
    PointSpec,
    expand_grid,
    normalize_spec,
    parse_topology,
    run_batch_points,
    run_point,
    run_sweep,
    saturation_curves,
    write_csv,
)
from repro.network.workloads import (
    TENANT_SEED_STRIDE,
    TenantSpec,
    TenantStats,
    Workload,
    canonical_workload,
    compile_trace,
    compile_workload,
    encode_tenant_column,
    parse_workload,
    read_trace,
    record_trace,
    tenant_stats_of,
    trace_key,
    write_trace,
)

NATIVE_OK = native_mod.load_library()[0] is not None

TWO_TENANTS = "bg:uniform:0.2;fg:broadcast:0.4:2;rate=1"


class TestWorkloadGrammar:
    def test_parse_basic(self):
        wl = parse_workload("bg:uniform:0.2;fg:hotspot:0.1:3;rate=2")
        assert wl.rate == 2
        assert wl.names == ("bg", "fg")
        assert wl.tenants[0] == TenantSpec("bg", "uniform", 0.2, 0)
        assert wl.tenants[1] == TenantSpec("fg", "hotspot", 0.1, 3)

    def test_rate_defaults_to_one(self):
        assert parse_workload("t:uniform:0.5").rate == 1

    def test_rate_zero_means_no_arbitration(self):
        assert parse_workload("t:uniform:0.5;rate=0").rate == 0

    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "rate=1",                      # no tenants
        "t:uniform",                   # missing load
        "t:uniform:0.2:1:9",           # too many fields
        "t:warp:0.2",                  # unknown pattern
        "t:uniform:zero",              # unparsable load
        "t:uniform:0.0",               # non-positive load
        "t:uniform:-0.1",
        "t:uniform:0.2:x",             # bad priority
        "t:uniform:0.2;t:hotspot:0.1",  # duplicate names
        "t:uniform:0.2;rate=1;rate=2",  # duplicate rate
        "t:uniform:0.2;rate=-1",
        "t:uniform:0.2;rate=x",
        ":uniform:0.2",                # empty name
        "a=b:uniform:0.2",             # '=' in name
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_workload(bad)

    def test_canonical_collapses_spellings(self):
        a = canonical_workload("t:uniform:0.2")
        assert a == canonical_workload(" t:uniform:0.20:0 ; rate=1 ")
        assert a == "t:uniform:0.2:0"

    def test_canonical_keeps_nondefault_rate(self):
        assert canonical_workload("t:uniform:0.2;rate=3").endswith(";rate=3")
        assert canonical_workload("t:uniform:0.2;rate=0").endswith(";rate=0")

    def test_canonical_is_idempotent(self):
        c = canonical_workload(TWO_TENANTS)
        assert canonical_workload(c) == c


class TestCompileWorkload:
    def test_deterministic(self):
        topo = parse_topology("Q:4")
        a = compile_workload(TWO_TENANTS, topo, 16, seed=3)
        b = compile_workload(TWO_TENANTS, topo, 16, seed=3)
        assert a == b
        assert a != compile_workload(TWO_TENANTS, topo, 16, seed=4)

    def test_tenant_ids_align_with_traffic(self):
        topo = parse_topology("Q:4")
        c = compile_workload(TWO_TENANTS, topo, 16)
        assert len(c.traffic) == len(c.tenants)
        assert set(c.tenants) == {0, 1}
        assert c.names == ("bg", "fg")

    def test_tenant_packet_budget(self):
        """Each tenant contributes max(1, round(scale*load*n*window))
        packets -- the same normalisation as single-tenant sweep points."""
        topo = parse_topology("Q:3")
        c = compile_workload("a:uniform:0.25;b:uniform:0.5;rate=0", topo, 8)
        n = topo.num_nodes
        counts = {t: c.tenants.count(t) for t in set(c.tenants)}
        assert counts[0] == max(1, round(0.25 * n * 8))
        assert counts[1] == max(1, round(0.5 * n * 8))

    def test_load_scale_scales_every_tenant(self):
        topo = parse_topology("Q:3")
        one = compile_workload("a:uniform:0.25;rate=0", topo, 8, load_scale=1.0)
        two = compile_workload("a:uniform:0.25;rate=0", topo, 8, load_scale=2.0)
        assert len(two.traffic) == 2 * len(one.traffic)

    def test_tenants_use_distinct_derived_seeds(self):
        """Two tenants with identical specs still draw different traffic
        (the per-tenant seed stride decorrelates their streams)."""
        topo = parse_topology("Q:4")
        c = compile_workload("a:uniform:0.3;b:uniform:0.3;rate=0", topo, 16)
        a = [pkt for pkt, t in zip(c.traffic, c.tenants) if t == 0]
        b = [pkt for pkt, t in zip(c.traffic, c.tenants) if t == 1]
        assert sorted(a) != sorted(b)
        assert TENANT_SEED_STRIDE > 0

    def test_rate_limits_per_source_per_cycle(self):
        """With rate=N, no source node injects more than N packets in
        any cycle after arbitration."""
        topo = parse_topology("Q:4")
        for rate in (1, 2):
            wl = f"a:uniform:0.6;b:uniform:0.6;rate={rate}"
            c = compile_workload(wl, topo, 8)
            per_slot = {}
            for cycle, src, _ in c.traffic:
                per_slot[(cycle, src)] = per_slot.get((cycle, src), 0) + 1
            assert max(per_slot.values()) <= rate

    def test_rate_zero_preserves_requested_cycles(self):
        """rate=0 is pure superposition: the composite is exactly the
        union of each tenant's generated stream."""
        topo = parse_topology("Q:4")
        c = compile_workload("a:uniform:0.3;b:transpose:0.3;rate=0", topo, 8)
        from repro.network.traffic import PATTERNS
        n = topo.num_nodes
        want = sorted(PATTERNS["uniform"](
            topo, max(1, round(0.3 * n * 8)), 8, seed=TENANT_SEED_STRIDE))
        got = sorted(p for p, t in zip(c.traffic, c.tenants) if t == 0)
        assert got == want

    def test_arbitration_conserves_packets(self):
        """Arbitration defers, never drops: every generated packet
        appears exactly once in the arbitrated schedule."""
        topo = parse_topology("Q:3")
        free = compile_workload("a:uniform:0.8;b:uniform:0.8;rate=0", topo, 8)
        tight = compile_workload("a:uniform:0.8;b:uniform:0.8;rate=1", topo, 8)
        assert len(tight.traffic) == len(free.traffic)
        assert sorted(
            (s, d, t) for (_, s, d), t in zip(tight.traffic, tight.tenants)
        ) == sorted(
            (s, d, t) for (_, s, d), t in zip(free.traffic, free.tenants)
        )

    def test_priority_wins_contended_slots(self):
        """When a high- and a low-priority tenant contend for the same
        injection slot, the high-priority packet is never the one
        deferred past the other's grant cycle at that source."""
        topo = parse_topology("Q:3")
        c = compile_workload("lo:uniform:1.0;hi:uniform:1.0:5;rate=1", topo, 4)
        # per source, the mean arbitrated cycle of hi <= that of lo
        by = {}
        for (cycle, src, _), t in zip(c.traffic, c.tenants):
            by.setdefault(src, {0: [], 1: []})[t].append(cycle)
        for src, cyc in by.items():
            if cyc[0] and cyc[1]:
                mean_lo = sum(cyc[0]) / len(cyc[0])
                mean_hi = sum(cyc[1]) / len(cyc[1])
                assert mean_hi <= mean_lo

    def test_faults_silence_dead_sources_after_arbitration(self):
        topo = parse_topology("Q:3")
        plan = FaultPlan.parse("n0@0", num_nodes=topo.num_nodes)
        c = compile_workload(TWO_TENANTS, topo, 8, faults=plan)
        assert all(src != 0 for _, src, _ in c.traffic)

    def test_bad_scale_and_window(self):
        topo = parse_topology("Q:3")
        with pytest.raises(ValueError, match="load_scale"):
            compile_workload(TWO_TENANTS, topo, 8, load_scale=0.0)
        with pytest.raises(ValueError, match="inject_window"):
            compile_workload(TWO_TENANTS, topo, 0)


class TestTraceRoundTrip:
    def _trace(self):
        topo = parse_topology("Q:4")
        return record_trace(TWO_TENANTS, "Q:4", topo, 16, seed=1)

    def test_round_trip_is_identity(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "t.ndjson"
        write_trace(trace, str(path))
        assert read_trace(str(path)) == trace

    def test_trace_key_is_content_addressed(self, tmp_path):
        trace = self._trace()
        a = tmp_path / "a.ndjson"
        b = tmp_path / "renamed.ndjson"
        write_trace(trace, str(a))
        write_trace(trace, str(b))
        assert trace_key(read_trace(str(a))) == trace_key(read_trace(str(b)))
        assert len(trace_key(trace)) == 16

    def test_header_is_first_line_and_versioned(self, tmp_path):
        path = tmp_path / "t.ndjson"
        write_trace(self._trace(), str(path))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro-trace"
        assert header["version"] == 1
        assert header["tenants"] == ["bg", "fg"]
        assert header["packets"] == len(self._trace().traffic)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        write_trace(self._trace(), str(path))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_trace(str(path))

    def test_foreign_and_truncated_files_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_trace(str(path))
        path.write_text('{"format":"something-else","version":1}\n')
        with pytest.raises(ValueError, match="header"):
            read_trace(str(path))
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(str(path))
        # header declares more packets than the file carries
        good = tmp_path / "g.ndjson"
        write_trace(self._trace(), str(good))
        lines = good.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            read_trace(str(path))

    def test_bad_packet_lines_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        write_trace(self._trace(), str(path))
        lines = path.read_text().splitlines()
        for bad in ('{"c":1,"s":2}', '{"c":1,"s":2,"d":3,"t":9}',
                    '{"c":-1,"s":2,"d":3,"t":0}',
                    '{"c":1.5,"s":2,"d":3,"t":0}'):
            header = json.loads(lines[0])
            header["packets"] = 1
            path.write_text(json.dumps(header) + "\n" + bad + "\n")
            with pytest.raises(ValueError):
                read_trace(str(path))

    def test_compile_trace_validates_topology_range(self):
        trace = self._trace()
        small = parse_topology("Q:2")
        with pytest.raises(ValueError, match="out of range"):
            compile_trace(trace, small)

    def test_compile_trace_replays_exact_schedule(self):
        trace = self._trace()
        topo = parse_topology("Q:4")
        c = compile_trace(trace, topo)
        assert c.traffic == trace.traffic
        assert c.tenants == trace.tenant_ids
        assert c.names == trace.tenants

    def test_compile_trace_applies_replay_time_faults(self):
        trace = self._trace()
        topo = parse_topology("Q:4")
        plan = FaultPlan.parse("n0@0", num_nodes=topo.num_nodes)
        c = compile_trace(trace, topo, faults=plan)
        assert all(src != 0 for _, src, _ in c.traffic)
        assert len(c.traffic) == len(c.tenants)


class TestTenantAccounting:
    def test_stats_partition_totals(self):
        stats = tenant_stats_of(
            [0, 0, 1, 1, 1], [0, 1, 1, 0, 1], [True, True, False, False, True],
            [3, 5, 7],
        )
        assert [s.tenant for s in stats] == [0, 1]
        assert sum(s.injected for s in stats) == 5
        assert sum(s.delivered for s in stats) == 3
        assert stats[0].latencies == (3,)
        assert stats[1].latencies == (5, 7)
        assert stats[1].undelivered == 1

    def test_delivery_rate_and_avg(self):
        s = TenantStats(0, 4, 2, 2, (2, 4))
        assert s.delivery_rate == 0.5
        assert s.avg_latency == 3.0
        empty = TenantStats(1, 0, 0, 0, ())
        assert empty.delivery_rate == 1.0
        assert empty.avg_latency == 0.0

    def test_encode_tenant_column_is_canonical(self):
        stats = (TenantStats(0, 2, 2, 0, (1, 3)), TenantStats(1, 1, 0, 1, ()))
        col = encode_tenant_column(("bg", "fg"), stats, p95={0: 3.0, 1: 0.0})
        rows = json.loads(col)
        assert [r["tenant"] for r in rows] == ["bg", "fg"]
        assert rows[0]["p95_latency"] == 3.0
        # canonical: compact separators, sorted keys
        assert col == json.dumps(rows, sort_keys=True, separators=(",", ":"))


class TestEngineEquivalence:
    @pytest.mark.parametrize("switching,flits", [
        ("sf", 1), ("wormhole", 3), ("vct", 2),
    ])
    def test_reference_matches_vectorized_with_tenants(self, switching, flits):
        topo = parse_topology("Q:4")
        c = compile_workload(TWO_TENANTS, topo, 16, seed=2)
        kwargs = dict(switching=switching, flits=flits, tenants=c.tenants)
        ref = ReferenceSimulator(topo).run(c.traffic, **kwargs)
        vec = VectorizedSimulator(topo).run(c.traffic, **kwargs)
        assert ref == vec
        assert len(ref.tenant_stats) == 2

    def test_tenant_stats_partition_the_run(self):
        topo = parse_topology("Q:4")
        c = compile_workload(TWO_TENANTS, topo, 16)
        res = VectorizedSimulator(topo).run(c.traffic, tenants=c.tenants)
        assert sum(s.injected for s in res.tenant_stats) == res.injected
        assert sum(s.delivered for s in res.tenant_stats) == res.delivered
        pooled = sorted(
            x for s in res.tenant_stats for x in s.latencies)
        assert sum(pooled) / len(pooled) == pytest.approx(res.avg_latency)

    def test_without_tenants_no_stats(self):
        topo = parse_topology("Q:3")
        res = VectorizedSimulator(topo).run([(0, 0, 5)])
        assert res.tenant_stats == ()

    def test_misaligned_tenants_rejected(self):
        topo = parse_topology("Q:3")
        for engine in (ReferenceSimulator(topo), VectorizedSimulator(topo)):
            with pytest.raises(ValueError, match="align"):
                engine.run([(0, 0, 5), (0, 1, 4)], tenants=[0])

    def test_faulted_run_keeps_per_tenant_accounting(self):
        topo = parse_topology("Q:4")
        c = compile_workload(TWO_TENANTS, topo, 16)
        plan = FaultPlan.parse("n3@4", num_nodes=topo.num_nodes)
        ref = ReferenceSimulator(topo).run(
            c.traffic, faults=plan, tenants=c.tenants)
        vec = VectorizedSimulator(topo).run(
            c.traffic, faults=plan, tenants=c.tenants)
        assert ref == vec
        assert sum(s.injected for s in vec.tenant_stats) == vec.injected


class TestSweepIntegration:
    def test_run_point_workload_record(self):
        rec = run_point(PointSpec(
            topology="Q:4", workload=TWO_TENANTS, inject_window=16))
        assert rec.pattern == "-"
        assert rec.workload == canonical_workload(TWO_TENANTS)
        rows = json.loads(rec.tenants)
        assert [r["tenant"] for r in rows] == ["bg", "fg"]
        assert sum(r["injected"] for r in rows) == rec.injected
        assert sum(r["delivered"] for r in rows) == rec.delivered

    def test_point_load_scales_workload(self):
        n = parse_topology("Q:4").num_nodes
        lo = run_point(PointSpec(
            topology="Q:4", workload="a:uniform:0.2:0", load=0.5,
            inject_window=16))
        hi = run_point(PointSpec(
            topology="Q:4", workload="a:uniform:0.2:0", load=2.0,
            inject_window=16))
        assert lo.injected == max(1, round(0.5 * 0.2 * n * 16))
        assert hi.injected == max(1, round(2.0 * 0.2 * n * 16))

    def test_normalize_rejects_collective_cross(self):
        with pytest.raises(ValueError, match="cannot be both"):
            normalize_spec(PointSpec(
                topology="Q:3", collective="broadcast",
                workload="a:uniform:0.2"))
        with pytest.raises(ValueError, match="cross"):
            expand_grid(["Q:3"], collectives=("broadcast",),
                        workloads=("a:uniform:0.2",))

    def test_expand_grid_workload_axis(self):
        specs = expand_grid(
            ["Q:3"], patterns=("uniform", "tornado"), loads=(0.2,),
            workloads=("", "a:uniform:0.2"),
        )
        plain = [s for s in specs if not s.workload]
        wl = [s for s in specs if s.workload]
        assert len(plain) == 2      # one per pattern
        assert len(wl) == 1         # pattern axis collapses for workloads
        assert wl[0].pattern == "-"
        assert wl[0].workload == "a:uniform:0.2:0"

    def test_expand_grid_validates_inline_specs(self):
        with pytest.raises(ValueError, match="pattern"):
            expand_grid(["Q:3"], workloads=("a:warp:0.2",))

    def test_trace_workload_pins_load(self):
        spec = normalize_spec(PointSpec(
            topology="Q:3", workload="trace:abc", load=0.7,
            pattern="uniform"))
        assert spec.load == 1.0
        assert spec.pattern == "-"

    def test_trace_point_requires_mapping(self):
        with pytest.raises(ValueError, match="traces"):
            run_point(PointSpec(topology="Q:4", workload="trace:deadbeef"))

    def test_trace_point_validates_topology(self, tmp_path):
        topo = parse_topology("Q:4")
        trace = record_trace(TWO_TENANTS, "Q:4", topo, 8)
        key = trace_key(trace)
        with pytest.raises(ValueError, match="recorded on"):
            run_point(
                PointSpec(topology="Q:3", workload=f"trace:{key}"),
                traces={key: trace},
            )

    def test_trace_replay_matches_inline_compile(self):
        """Replaying a recorded trace gives the same record payload as
        running the workload inline (same schedule, same engine)."""
        topo = parse_topology("Q:4")
        trace = record_trace(TWO_TENANTS, "Q:4", topo, 16)
        key = trace_key(trace)
        inline = run_point(PointSpec(
            topology="Q:4", workload=TWO_TENANTS, load=1.0,
            inject_window=16))
        replay = run_point(
            PointSpec(topology="Q:4", workload=f"trace:{key}", load=1.0,
                      inject_window=16),
            traces={key: trace},
        )
        assert replay.injected == inline.injected
        assert replay.avg_latency == inline.avg_latency
        assert replay.tenants == inline.tenants

    def test_batched_workload_points_match_sequential(self):
        specs = expand_grid(
            ["Q:4"], patterns=("uniform",), loads=(0.5, 1.0), seeds=(0, 1),
            workloads=(TWO_TENANTS,), inject_window=8,
        )
        from dataclasses import replace

        seq = [run_point(s) for s in specs]
        bat = run_batch_points(specs)
        assert [replace(r, batch=1) for r in bat] == seq
        assert all(r.batch == len(specs) for r in bat)

    def test_saturation_curves_key_per_workload(self):
        records = run_sweep(
            ["Q:4"], patterns=("uniform",), loads=(0.5, 1.0),
            workloads=("a:uniform:0.2:0", "b:hotspot:0.1:0"),
            inject_window=8,
        )
        curves = saturation_curves(records)
        keys = sorted(curves)
        assert len(keys) == 2
        assert {k[2] for k in keys} == {"a:uniform:0.2:0", "b:hotspot:0.1:0"}
        for curve in curves.values():
            assert [p.load for p in curve] == [0.5, 1.0]

    def test_two_tenant_sweep_bit_identical_across_backends(self, tmp_path):
        """The acceptance gate: a two-tenant overlay sweep is
        bit-identical through the numpy and (when present) native
        backends, cached and uncached."""
        grid = dict(
            topologies=["Q:4"], patterns=("uniform",), loads=(0.5, 1.0),
            seeds=(0, 1), workloads=(TWO_TENANTS,),
            switching=("sf", "wormhole"), vcs=(2,), buffers=(4,),
            flits=("1-2",), inject_window=8,
        )
        base = run_sweep(backend="numpy", **grid)
        backends = ["numpy"] + (["native"] if NATIVE_OK else [])
        for be in backends:
            cache = ResultCache(tmp_path / be)
            cold = run_sweep(backend=be, cache=cache, **grid)
            warm = run_sweep(backend=be, cache=cache, **grid)
            assert cold == base
            assert warm == base
            assert cache.hits == len(base)
        # byte-level: the CSV of each run is identical
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        write_csv(base, str(a))
        write_csv(run_sweep(backend=backends[-1], **grid), str(b))
        assert a.read_bytes() == b.read_bytes()


class TestP95Aggregation:
    def test_curve_p95_is_mean_of_per_seed_p95s(self):
        """Satellite: CurvePoint.p95_latency is the *mean of per-seed
        p95s*; the pooled-sample p95 is a different statistic but must
        lie within the per-seed min/max envelope (the documented
        cross-check bound)."""
        from repro.network.sweep import nearest_rank_p95
        from repro.network.traffic import make_traffic

        records = run_sweep(
            ["Q:4"], patterns=("uniform",), loads=(0.8,), seeds=(0, 1, 2, 3),
            inject_window=16,
        )
        per_seed = [r.p95_latency for r in records]
        [curve] = saturation_curves(records).values()
        assert curve[0].p95_latency == pytest.approx(
            sum(per_seed) / len(per_seed))
        # pooled cross-check: recompute each seed's sample and pool them
        topo = parse_topology("Q:4")
        pooled = []
        for r in records:
            traffic = make_traffic("uniform", topo, r.injected, 16,
                                   seed=r.seed)
            pooled.extend(VectorizedSimulator(topo).run(traffic).latencies)
        pooled_p95 = nearest_rank_p95(pooled)
        assert min(per_seed) <= pooled_p95 <= max(per_seed)
        assert not math.isnan(pooled_p95)
