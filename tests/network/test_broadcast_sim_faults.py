"""Broadcast scheduling, the message simulator, fault trials, Hamiltonicity."""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.network.broadcast import (
    binomial_broadcast_schedule,
    broadcast_rounds,
    verify_schedule,
)
from repro.network.faults import fault_tolerance_trial
from repro.network.hamilton import find_hamiltonian_cycle, find_hamiltonian_path
from repro.network.simulator import NetworkSimulator, uniform_traffic
from repro.network.topology import topology_of

from tests.conftest import cycle_graph, path_graph


class TestBroadcast:
    def test_hypercube_meets_log_bound(self):
        for d in (2, 3, 4, 5):
            topo = topology_of(hypercube(d), name=f"Q{d}")
            rounds, bound = broadcast_rounds(topo, 0)
            assert rounds == bound == d

    def test_schedule_verifies(self):
        topo = topology_of(("11", 6))
        for root in (0, 5, topo.num_nodes - 1):
            sched = binomial_broadcast_schedule(topo, root)
            assert verify_schedule(topo, root, sched)

    def test_fibonacci_cube_rounds_close_to_bound(self):
        topo = topology_of(("11", 7))
        rounds, bound = broadcast_rounds(topo, 0)
        assert bound <= rounds <= bound + 3

    def test_path_broadcast_is_linear(self):
        g = path_graph(6)
        g.set_labels([str(i) for i in range(6)])
        topo = topology_of(g, name="path")
        rounds, _ = broadcast_rounds(topo, 0)
        assert rounds == 5  # head of a path can only flood sequentially

    def test_single_node(self):
        g = path_graph(1)
        g.set_labels(["x"])
        topo = topology_of(g, name="dot")
        rounds, bound = broadcast_rounds(topo, 0)
        assert rounds == 0 and bound == 0

    def test_verify_rejects_bogus_schedule(self):
        topo = topology_of(("11", 4))
        # sender not informed
        assert not verify_schedule(topo, 0, [[(3, 4)]])
        # non-edge
        n = topo.num_nodes
        bad = None
        for v in range(1, n):
            if not topo.graph.has_edge(0, v):
                bad = v
                break
        if bad is not None:
            assert not verify_schedule(topo, 0, [[(0, bad)]])


class TestSimulator:
    @pytest.fixture(scope="class")
    def gamma6(self):
        return topology_of(("11", 6))

    def test_all_delivered_light_load(self, gamma6):
        traffic = uniform_traffic(gamma6, 100, 200, seed=3)
        res = NetworkSimulator(gamma6).run(traffic)
        assert res.delivery_rate == 1.0
        assert res.delivered == 100

    def test_latency_lower_bound(self, gamma6):
        from repro.graphs.traversal import bfs_distances

        src, dst = 0, gamma6.num_nodes - 1
        dist = int(bfs_distances(gamma6.graph, src)[dst])
        res = NetworkSimulator(gamma6).run([(0, src, dst)])
        assert res.latencies[0] >= dist

    def test_contention_raises_latency(self, gamma6):
        # everyone sends to node 0 at cycle 0: serialization at the sink
        n = gamma6.num_nodes
        traffic = [(0, s, 0) for s in range(1, n)]
        res = NetworkSimulator(gamma6).run(traffic)
        assert res.delivery_rate == 1.0
        assert res.max_latency > res.avg_latency >= 1.0
        assert res.max_queue >= 1

    def test_deterministic_traffic(self, gamma6):
        t1 = uniform_traffic(gamma6, 50, 10, seed=9)
        t2 = uniform_traffic(gamma6, 50, 10, seed=9)
        assert t1 == t2

    def test_throughput_positive(self, gamma6):
        traffic = uniform_traffic(gamma6, 60, 30, seed=5)
        res = NetworkSimulator(gamma6).run(traffic)
        assert res.throughput > 0

    def test_traffic_needs_two_nodes(self):
        g = path_graph(1)
        g.set_labels(["x"])
        topo = topology_of(g, name="dot")
        with pytest.raises(ValueError):
            uniform_traffic(topo, 5, 5)


class TestFaults:
    def test_zero_faults_keeps_everything(self):
        topo = topology_of(("11", 6))
        rep = fault_tolerance_trial(topo, 0, seed=1)
        assert rep.still_connected
        assert rep.largest_component_fraction == 1.0
        assert rep.reachable_pair_fraction == 1.0
        assert rep.diameter_after == rep.diameter_before

    def test_moderate_faults_mostly_survive(self):
        topo = topology_of(("11", 8))
        rep = fault_tolerance_trial(topo, 4, seed=2)
        assert rep.largest_component_fraction > 0.8

    def test_invalid_fault_count(self):
        topo = topology_of(("11", 4))
        with pytest.raises(ValueError):
            fault_tolerance_trial(topo, topo.num_nodes, seed=0)

    def test_deterministic_given_seed(self):
        topo = topology_of(("11", 6))
        a = fault_tolerance_trial(topo, 3, seed=11)
        b = fault_tolerance_trial(topo, 3, seed=11)
        assert a == b


class TestHamilton:
    def test_path_graph_has_ham_path(self):
        assert find_hamiltonian_path(path_graph(6)) is not None

    def test_cycle_has_ham_cycle(self):
        cyc = find_hamiltonian_cycle(cycle_graph(7))
        assert cyc is not None
        assert len(cyc) == 7

    def test_star_has_no_ham_path(self):
        from tests.conftest import star_graph

        assert find_hamiltonian_path(star_graph(3)) is None

    def test_path_has_no_ham_cycle(self):
        assert find_hamiltonian_cycle(path_graph(5)) is None

    @pytest.mark.parametrize("s,d", [(2, 5), (2, 7), (3, 6), (4, 6)])
    def test_q_d_1s_mostly_hamiltonian(self, s, d):
        """Liu--Hsu--Chung: Q_d(1^s) has a Hamiltonian path."""
        g = generalized_fibonacci_cube("1" * s, d).graph()
        path = find_hamiltonian_path(g)
        assert path is not None
        assert len(path) == g.num_vertices
        assert len(set(path)) == g.num_vertices
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_hypercube_ham_cycle(self):
        cyc = find_hamiltonian_cycle(hypercube(4))
        assert cyc is not None
        assert hypercube(4).has_edge(cyc[-1], cyc[0])

    def test_tiny_graphs(self):
        assert find_hamiltonian_path(path_graph(1)) == [0]
        assert find_hamiltonian_cycle(path_graph(2)) is None
