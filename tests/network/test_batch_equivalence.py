"""Batched engine vs sequential vectorized runs: identical SimResults.

The batch engine is only allowed to be *faster*, never *different*: a
K-item batch must produce, item for item, exactly the ``SimResult`` a
sequential ``VectorizedSimulator.run`` of that item produces -- fault
plans, truncating cycle caps, droppy routers, mixed routers sharing (or
not sharing) route tables, and every switching mode (store-and-forward
and the natively-batched wormhole/vct flow-control modes, mixed freely
within one batch) all included.  This mirrors
``test_vectorized_equivalence.py`` one level up: that suite pins the
vectorized engine to the reference spec, this one pins the batch axis to
the vectorized engine, so the chain of custody back to the per-packet
reference loop is complete.
"""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.batch import (
    BatchedSimulator,
    BatchItem,
    run_batch,
)
from repro.network.faults import FaultPlan
from repro.network.flowcontrol import FlowControl
from repro.network.routing import (
    AdaptiveRouter,
    BfsRouter,
    DimensionOrderRouter,
    GreedyRouter,
)
from repro.network.simulator import VectorizedSimulator
from repro.network.topology import faulted_topology, topology_of
from repro.network.traffic import flit_sizes, make_traffic


def _topologies():
    return {
        "fibonacci": topology_of(("11", 6)),
        "hypercube": topology_of(hypercube(4), name="Q4"),
        "faulted": faulted_topology(topology_of(("11", 7)), 3, seed=5),
    }


TOPOLOGIES = _topologies()

ROUTER_MAKERS = {
    "ecube": DimensionOrderRouter,
    "bfs": BfsRouter,
    "adaptive": AdaptiveRouter,
}


def _fault_plans(topo):
    """Plans valid on any test topology: failures active up front, and
    failures striking while traffic is in flight."""
    u, v = next(iter(topo.graph.edges()))
    n = topo.num_nodes
    return {
        "none": None,
        "static": FaultPlan(node_faults=((0, 2 % n),), link_faults=((0, u, v),)),
        "staged": FaultPlan(node_faults=((4, 3 % n),), link_faults=((9, u, v),)),
    }


def _replications(topo, router, plan, k=4):
    """K replications with varying seed/pattern/load, one shared router
    instance (the shape the sweep packer produces)."""
    items = []
    for i in range(k):
        pattern = ("uniform", "hotspot", "transpose", "bursty")[i % 4]
        traffic = make_traffic(
            pattern, topo, 60 + 30 * i, 8 + 2 * i, seed=i, faults=plan
        )
        items.append(BatchItem(traffic=traffic, router=router, faults=plan))
    return items


def _sequential(topo, items, max_cycles=100000):
    return [
        VectorizedSimulator(topo, it.router).run(
            it.traffic, max_cycles=max_cycles, faults=it.faults,
            switching=it.switching, flits=it.flits,
        )
        for it in items
    ]


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("router_name", sorted(ROUTER_MAKERS))
@pytest.mark.parametrize("plan_name", ["none", "static", "staged"])
def test_batched_matches_sequential(topo_name, router_name, plan_name):
    """The acceptance grid: >= 3 topologies x {ecube, bfs, adaptive} x
    fault plans, K-batched results bit-identical to K sequential runs."""
    topo = TOPOLOGIES[topo_name]
    plan = _fault_plans(topo)[plan_name]
    items = _replications(topo, ROUTER_MAKERS[router_name](), plan)
    got = BatchedSimulator(topo).run_batch(items)
    want = _sequential(topo, items)
    assert got == want, (topo_name, router_name, plan_name)
    assert any(r.delivered for r in got)


def test_mixed_routers_and_plans_in_one_batch():
    """One batch may mix router instances and fault plans freely: each
    replication still comes out exactly as its own sequential run."""
    topo = TOPOLOGIES["fibonacci"]
    plans = _fault_plans(topo)
    bfs, ecube = BfsRouter(), DimensionOrderRouter()
    items = [
        BatchItem(make_traffic("uniform", topo, 80, 10, seed=1), router=bfs),
        BatchItem(make_traffic("tornado", topo, 50, 5, seed=2), router=ecube),
        BatchItem(
            make_traffic("hotspot", topo, 90, 12, seed=3, faults=plans["staged"]),
            router=AdaptiveRouter(), faults=plans["staged"],
        ),
        BatchItem(make_traffic("uniform", topo, 40, 6, seed=4), router=bfs),
        BatchItem(
            make_traffic("uniform", topo, 70, 9, seed=5, faults=plans["static"]),
            router=bfs, faults=plans["static"],
        ),
    ]
    assert BatchedSimulator(topo).run_batch(items) == _sequential(topo, items)


@pytest.mark.parametrize("cap", [1, 5, 23])
def test_batched_matches_sequential_under_cycle_cap(cap):
    """Truncated runs (saturated network, hard cap) must agree too --
    per-run cycle counts, stall totals and all."""
    topo = TOPOLOGIES["hypercube"]
    items = [
        BatchItem(make_traffic("hotspot", topo, 120, 1, seed=s), router=BfsRouter())
        for s in range(3)
    ]
    got = BatchedSimulator(topo).run_batch(items, max_cycles=cap)
    assert got == _sequential(topo, items, max_cycles=cap)
    assert all(r.cycles <= cap for r in got)


def test_mixed_switching_modes_in_one_batch():
    """sf, wormhole and vct items co-batch natively in one lock-step
    loop and still match their sequential runs bit for bit."""
    topo = TOPOLOGIES["fibonacci"]
    traffic = make_traffic("uniform", topo, 100, 10, seed=7)
    sizes = flit_sizes(len(traffic), "1-4", seed=8)
    items = [
        BatchItem(traffic, router=BfsRouter()),
        BatchItem(
            traffic, router=BfsRouter(),
            switching=FlowControl("wormhole", buffer_depth=2, num_vcs=2),
            flits=sizes,
        ),
        BatchItem(
            traffic, router=BfsRouter(),
            switching=FlowControl("vct", buffer_depth=6, num_vcs=2),
            flits=sizes,
        ),
    ]
    assert BatchedSimulator(topo).run_batch(items) == _sequential(topo, items)


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("mode", ["wormhole", "vct"])
@pytest.mark.parametrize("plan_name", ["none", "static", "staged"])
def test_batched_flow_control_matches_sequential(topo_name, mode, plan_name):
    """The flow-control acceptance grid: wormhole/vct batches -- varying
    VC counts, buffer depths and flit mixes per item, fault epochs
    splitting mid-batch included -- bit-identical to sequential runs."""
    topo = TOPOLOGIES[topo_name]
    plan = _fault_plans(topo)[plan_name]
    router = BfsRouter()
    items = []
    for i in range(4):
        pattern = ("uniform", "hotspot", "transpose", "bursty")[i % 4]
        traffic = make_traffic(
            pattern, topo, 60 + 30 * i, 8 + 2 * i, seed=i, faults=plan
        )
        depth = (2, 4, 3, 6)[i]
        items.append(BatchItem(
            traffic=traffic, router=router, faults=plan,
            switching=FlowControl(mode, buffer_depth=depth, num_vcs=1 + i % 3),
            flits=flit_sizes(len(traffic), ("1-4", "2", "1", "2-6")[i], seed=i)
            if mode == "wormhole" else
            flit_sizes(len(traffic), ("1-2", "2", "1", "2-3")[i], seed=i),
        ))
    got = BatchedSimulator(topo).run_batch(items)
    want = _sequential(topo, items)
    assert got == want, (topo_name, mode, plan_name)
    assert any(r.delivered for r in got)


def test_deadlocked_run_inside_a_batch():
    """A run that deadlocks must be convicted inside the batch exactly as
    it is sequentially -- frozen at the same cycle, same stalled count --
    while healthy runs in the same batch finish normally."""
    # BFS shortest paths on the non-isometric Q_5(1010) cube form
    # channel-dependency cycles; one VC and one-flit buffers make them
    # bite under load
    topo = topology_of(("1010", 5))
    router = BfsRouter()
    tight = FlowControl("wormhole", buffer_depth=1, num_vcs=1)
    roomy = FlowControl("wormhole", buffer_depth=8, num_vcs=2)
    items = []
    for seed in range(6):
        traffic = make_traffic("uniform", topo, 120, 2, seed=seed)
        items.append(BatchItem(
            traffic, router=router,
            switching=tight if seed % 2 == 1 else roomy,
            flits=flit_sizes(len(traffic), "2-6", seed=seed),
        ))
    want = _sequential(topo, items)
    # the scenario must actually exercise both verdicts, or the test
    # isn't testing what it claims
    assert any(r.deadlocked for r in want)
    assert any(not r.deadlocked and r.delivered for r in want)
    got = BatchedSimulator(topo).run_batch(items)
    assert got == want
    for g in got:
        if g.deadlocked:
            assert g.stalled > 0


@pytest.mark.parametrize("cap", [1, 7, 29])
def test_batched_flow_control_under_cycle_cap(cap):
    """Cycle-cap truncation of pipelined runs inside a batch: per-run
    cycle counts, stall totals and deadlock flags all match."""
    topo = TOPOLOGIES["fibonacci"]
    router = BfsRouter()
    items = []
    for seed in range(4):
        traffic = make_traffic("hotspot", topo, 100, 2, seed=seed)
        items.append(BatchItem(
            traffic, router=router,
            switching=FlowControl(
                ("wormhole", "vct")[seed % 2], buffer_depth=4,
                num_vcs=1 + seed % 2,
            ),
            flits=flit_sizes(len(traffic), "1-4", seed=seed),
        ))
    got = BatchedSimulator(topo).run_batch(items, max_cycles=cap)
    assert got == _sequential(topo, items, max_cycles=cap)
    assert all(r.cycles <= cap for r in got)


def test_droppy_router_and_empty_items():
    """Unroutable pairs (GreedyRouter on Q_d(101)) and empty-traffic
    items condense exactly like their sequential counterparts."""
    topo = topology_of(("101", 4))
    items = [
        BatchItem(make_traffic("uniform", topo, 90, 10, seed=2), router=GreedyRouter()),
        BatchItem([], router=BfsRouter()),
        BatchItem(make_traffic("uniform", topo, 60, 8, seed=3), router=BfsRouter()),
    ]
    got = run_batch(topo, items)
    assert got == _sequential(topo, items)
    assert got[0].delivery_rate < 1.0
    assert got[1].injected == 0 and got[1].cycles == 1


def test_default_router_is_bfs():
    topo = TOPOLOGIES["hypercube"]
    traffic = make_traffic("uniform", topo, 50, 6, seed=0)
    got = BatchedSimulator(topo).run_batch([BatchItem(traffic)])
    assert got == [VectorizedSimulator(topo, BfsRouter()).run(traffic)]


def test_batch_is_deterministic_and_order_preserving():
    topo = TOPOLOGIES["fibonacci"]
    items = _replications(topo, BfsRouter(), None, k=5)
    a = BatchedSimulator(topo).run_batch(items)
    b = BatchedSimulator(topo).run_batch(items)
    assert a == b
    # reversing the items reverses the results, nothing else
    rev = BatchedSimulator(topo).run_batch(items[::-1])
    assert rev == a[::-1]


def test_batch_validation_matches_the_engines():
    """The batch raises the sequential engines' own errors, eagerly."""
    topo = TOPOLOGIES["fibonacci"]
    ok = BatchItem(make_traffic("uniform", topo, 20, 4, seed=0))
    with pytest.raises(ValueError, match="non-negative"):
        run_batch(topo, [ok, BatchItem([(-3, 0, 5), (0, 1, 4)])])
    with pytest.raises(ValueError, match="single-flit"):
        run_batch(topo, [BatchItem([(0, 0, 5)], flits=3)])
    with pytest.raises(ValueError, match="at least 1 flit"):
        run_batch(topo, [BatchItem([(0, 0, 5)], flits=[0])])
    with pytest.raises(ValueError, match="fit whole packets"):
        run_batch(topo, [BatchItem(
            [(0, 0, 5)], switching=FlowControl("vct", buffer_depth=2), flits=5,
        )])
    # validation is eager for the WHOLE batch: a bad item after a
    # pipelined one raises before the fallback simulation ever runs
    worm = BatchItem(
        make_traffic("uniform", topo, 40, 6, seed=1),
        switching=FlowControl("wormhole"), flits=2,
    )
    with pytest.raises(ValueError, match="non-negative"):
        run_batch(topo, [worm, BatchItem([(-1, 0, 5)])])


def test_empty_batch():
    assert run_batch(TOPOLOGIES["hypercube"], []) == []


@pytest.mark.heavy
def test_large_mixed_batch_sweep_shape():
    """A sweep-shaped batch (many seeds x patterns x loads on one
    topology, shared routers) stays bit-identical at K = 24."""
    topo = TOPOLOGIES["faulted"]
    bfs, adaptive = BfsRouter(), AdaptiveRouter()
    plans = _fault_plans(topo)
    items = []
    for s in range(24):
        plan = (None, plans["static"], plans["staged"])[s % 3]
        items.append(BatchItem(
            make_traffic(
                ("uniform", "hotspot")[s % 2], topo, 40 + 11 * s,
                4 + s % 9, seed=s, faults=plan,
            ),
            router=(bfs, adaptive)[s % 2], faults=plan,
        ))
    assert BatchedSimulator(topo).run_batch(items) == _sequential(topo, items)
