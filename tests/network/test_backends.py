"""The backend layer: registry semantics, native bit-identity, cache
neutrality and every forced-fallback path.

The native backend's contract is strict: selected explicitly it must
either run the compiled kernel or raise (never degrade silently), under
``auto`` it must fall back to NumPy with a logged one-line reason, and
whichever implementation serves a call the results must be bit-identical
-- which is also what makes the result cache backend-neutral (a grid
warmed under one backend is fully warm under every other).

The fallback tests simulate the three ways a native build dies -- no
compiler on PATH, a compiler that rejects the flags
(``$REPRO_NATIVE_CFLAGS``), and a corrupt cached ``.so`` -- against a
throwaway ``$REPRO_CACHE_DIR``; :func:`repro.network.backends.reset`
re-arms the cached selection verdict around each one.
"""

import logging

import pytest

from repro.cli import main
from repro.network import backends
from repro.network.backends import (
    Backend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    backend_infos,
    resolve_backend,
)
from repro.network.backends import native as native_mod
from repro.network.batch import BatchedSimulator, BatchItem
from repro.network.faults import FaultPlan
from repro.network.service.cache import ResultCache
from repro.network.simulator import VectorizedSimulator
from repro.network.sweep import parse_topology, run_sweep
from repro.network.traffic import make_traffic, uniform_traffic

NATIVE_OK = native_mod.load_library()[0] is not None
needs_native = pytest.mark.skipif(
    not NATIVE_OK, reason="no usable C toolchain for the native backend"
)
needs_compiler = pytest.mark.skipif(
    native_mod._compiler() is None, reason="no C compiler on PATH"
)


@pytest.fixture(autouse=True)
def _clean_selection():
    """Every test starts and ends with no cached backend verdict (these
    tests flip compilers, flags and cache dirs under the registry)."""
    backends.reset()
    yield
    backends.reset()


@pytest.fixture
def scratch_cache(tmp_path, monkeypatch):
    """A throwaway native build cache, so fallback tests can never
    corrupt (or be rescued by) the real user-level one."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    backends.reset()
    return tmp_path / "cache"


class TestRegistry:
    def test_both_backends_registered(self):
        assert available_backends() == ["numpy", "native"]

    def test_infos_shape(self):
        infos = backend_infos()
        assert [i["name"] for i in infos] == ["numpy", "native"]
        for info in infos:
            assert isinstance(info["available"], bool)
            assert info["reason"]
        numpy_info = infos[0]
        assert numpy_info["available"] is True

    def test_instance_passes_through(self):
        be = NumpyBackend()
        assert resolve_backend(be) is be

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "native")
        assert resolve_backend("numpy").name == "numpy"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        auto = resolve_backend(None)
        assert auto.name in ("numpy", "native")
        # auto's verdict is cached: same object on repeat
        assert resolve_backend("auto") is auto

    def test_abstract_backend_is_abstract(self):
        be = Backend()
        topo = parse_topology("11:4")
        with pytest.raises(NotImplementedError):
            be.availability()
        with pytest.raises(NotImplementedError):
            be.sf_engine(topo, [])
        with pytest.raises(NotImplementedError):
            be.flow_engine(topo, [])


def _run(topo, backend, traffic, **kwargs):
    return VectorizedSimulator(topo, backend=backend).run(traffic, **kwargs)


@needs_native
class TestNativeBitIdentity:
    """Spot checks on the paths the fuzz suite samples statistically:
    every outcome column equal between the NumPy and native engines."""

    def test_uniform_sf(self):
        topo = parse_topology("11:6")
        traffic = uniform_traffic(topo, 300, 40, seed=7)
        assert _run(topo, "numpy", traffic) == _run(topo, "native", traffic)

    def test_zero_hop_and_cap(self):
        topo = parse_topology("Q:4")
        # self-addressed packets deliver at injection; the tight cap
        # exercises truncation accounting
        traffic = [(0, 3, 3), (2, 0, 15), (2, 5, 5), (9, 1, 14)]
        for cap in (3, 100000):
            assert _run(topo, "numpy", traffic, max_cycles=cap) == _run(
                topo, "native", traffic, max_cycles=cap
            )

    def test_faulted_sf(self):
        topo = parse_topology("101:5")
        plan = FaultPlan.parse("n3@5,l0-1@2", num_nodes=topo.num_nodes)
        traffic = make_traffic("uniform", topo, 200, 30, seed=11, faults=plan)
        assert _run(topo, "numpy", traffic, faults=plan) == _run(
            topo, "native", traffic, faults=plan
        )

    def test_mixed_batch_forces_step_mode(self):
        """sf + wormhole in one batch: two engines share the clock, so
        the native engine runs through repro_sf_step, not run_alone."""
        topo = parse_topology("11:5")
        items = [
            BatchItem(traffic=uniform_traffic(topo, 120, 20, seed=1)),
            BatchItem(
                traffic=uniform_traffic(topo, 80, 20, seed=2),
                switching="wormhole",
                flits=3,
            ),
            BatchItem(traffic=uniform_traffic(topo, 90, 25, seed=3)),
        ]
        a = BatchedSimulator(topo, backend="numpy").run_batch(items)
        b = BatchedSimulator(topo, backend="native").run_batch(items)
        assert a == b

    def test_sf_only_batch_runs_alone(self):
        """K sf replications: one engine, whole clock loop in C."""
        topo = parse_topology("1010:5")
        items = [
            BatchItem(traffic=uniform_traffic(topo, 100, 30, seed=s))
            for s in range(4)
        ]
        a = BatchedSimulator(topo, backend="numpy").run_batch(items)
        b = BatchedSimulator(topo, backend="native").run_batch(items)
        assert a == b

    def test_flow_control_points_still_run(self):
        """Pipelined modes stay on NumPy under the native backend, and
        the results say so by being identical."""
        topo = parse_topology("11:5")
        traffic = uniform_traffic(topo, 100, 20, seed=5)
        kwargs = dict(switching="vct", flits=2)
        assert _run(topo, "numpy", traffic, **kwargs) == _run(
            topo, "native", traffic, **kwargs
        )


@needs_native
class TestCacheNeutrality:
    def test_grid_warmed_under_numpy_is_warm_under_native(self, tmp_path):
        grid = dict(
            topologies=["11:5"], loads=(0.2, 0.5), seeds=(0, 1), patterns=("uniform",)
        )
        warm = ResultCache(tmp_path / "results")
        first = run_sweep(**grid, cache=warm, backend="numpy")
        assert warm.stores == len(first) > 0

        reread = ResultCache(tmp_path / "results")
        second = run_sweep(**grid, cache=reread, backend="native")
        assert second == first
        assert reread.stores == 0, "native re-simulated a warm grid"
        assert reread.hits == len(first)
        assert reread.misses == 0


class TestForcedFallback:
    def test_missing_compiler(self, tmp_path, monkeypatch, scratch_cache, caplog):
        empty = tmp_path / "no-tools"
        empty.mkdir()
        monkeypatch.delenv("CC", raising=False)
        monkeypatch.setenv("PATH", str(empty))
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        backends.reset()

        ok, reason = resolve_backend("numpy").availability()  # sanity: registry alive
        assert ok
        lib, why = native_mod.load_library()
        assert lib is None
        assert "no C compiler" in why

        with pytest.raises(BackendUnavailableError, match="no C compiler"):
            resolve_backend("native")

        with caplog.at_level(logging.INFO, logger="repro.network.backends"):
            assert resolve_backend("auto").name == "numpy"
        assert any("native unavailable" in r.message for r in caplog.records)

        # and the stack still simulates (on NumPy) end to end
        topo = parse_topology("11:4")
        traffic = uniform_traffic(topo, 50, 10, seed=3)
        assert _run(topo, None, traffic) == _run(topo, "numpy", traffic)

    @needs_compiler
    def test_failed_compile_falls_back(self, monkeypatch, scratch_cache):
        monkeypatch.setenv(
            "REPRO_NATIVE_CFLAGS", "-repro-definitely-not-a-flag"
        )
        backends.reset()
        lib, why = native_mod.load_library()
        assert lib is None
        assert "failed" in why
        with pytest.raises(BackendUnavailableError):
            resolve_backend("native")
        assert resolve_backend("auto").name == "numpy"

    @needs_native
    def test_corrupt_cached_object_rebuilds(self, scratch_cache):
        """A corrupt entry left behind by a previous process (torn
        write, disk rot, foreign build) must be rebuilt, not crash.
        The entry is planted before any load: dlopen dedupes by path
        within one process, so only a never-loaded path exercises the
        cold-start read a fresh process would perform."""
        so_path = native_mod.cached_object_path(
            native_mod.source_path(), native_mod._compiler(), native_mod._cflags()
        )
        so_path.parent.mkdir(parents=True, exist_ok=True)
        so_path.write_bytes(b"this is not a shared object")

        lib, why = native_mod.load_library()
        assert lib is not None, f"rebuild failed: {why}"
        assert "recompiled" in why
        # the rebuilt kernel is the real one
        topo = parse_topology("11:4")
        traffic = uniform_traffic(topo, 60, 12, seed=9)
        assert _run(topo, "native", traffic) == _run(topo, "numpy", traffic)

    @needs_native
    def test_fresh_compile_in_empty_cache(self, scratch_cache):
        assert not (scratch_cache / "native").exists()
        lib, why = native_mod.load_library()
        assert lib is not None
        assert "compiled kernel" in why
        assert any((scratch_cache / "native").glob("advance-*.so"))

    @needs_native
    def test_flag_change_lands_on_new_object(self, monkeypatch, scratch_cache):
        assert native_mod.load_library()[0] is not None
        first = set((scratch_cache / "native").glob("advance-*.so"))
        monkeypatch.setenv("REPRO_NATIVE_CFLAGS", "-O1")
        backends.reset()
        assert native_mod.load_library()[0] is not None
        second = set((scratch_cache / "native").glob("advance-*.so"))
        assert len(second) == 2 and first < second


class TestCli:
    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "native" in out
        assert "auto" in out and "->" in out
        assert "available" in out

    def test_sweep_backend_flag(self, capsys):
        rc = main([
            "sweep", "--topo", "11:4", "--loads", "0.2",
            "--window", "8", "--backend", "numpy",
        ])
        assert rc == 0
        assert "Q_4(11)" in capsys.readouterr().out

    def test_sweep_explicit_native_without_compiler_is_exit_2(
        self, tmp_path, monkeypatch, scratch_cache, capsys
    ):
        empty = tmp_path / "no-tools"
        empty.mkdir()
        monkeypatch.delenv("CC", raising=False)
        monkeypatch.setenv("PATH", str(empty))
        backends.reset()
        rc = main([
            "sweep", "--topo", "11:4", "--loads", "0.2",
            "--window", "8", "--backend", "native",
        ])
        assert rc == 2
        assert "native" in capsys.readouterr().err


@needs_native
def test_env_var_native_end_to_end(monkeypatch):
    """The CI native leg's contract: REPRO_BACKEND=native must really
    route sf points through the compiled kernel (resolve strictly), and
    results must match the NumPy leg bit for bit."""
    monkeypatch.setenv("REPRO_BACKEND", "native")
    assert resolve_backend(None).name == "native"
    topo = parse_topology("101:4")
    traffic = uniform_traffic(topo, 150, 25, seed=1)
    via_env = VectorizedSimulator(topo).run(traffic)
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert via_env == VectorizedSimulator(topo).run(traffic)
