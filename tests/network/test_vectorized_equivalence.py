"""Vectorized engine vs the reference engine: identical SimResults.

The vectorized simulator is only allowed to be *faster*, never
*different*: over seeded traffic from every pattern, on the Fibonacci
cube, the hypercube and a faulted topology, both engines must produce
the same ``SimResult`` field for field -- latencies and hop counts (per
packet, in injection order), cycle count, throughput, drop/misroute
counters, stall/deadlock verdicts and max queue depth.  The faulted
scenarios exercise the dynamic model end to end: static and staged
node/link failures, under fault-aware and fault-oblivious routers
alike; the switching grid re-runs the whole contract under wormhole and
virtual-cut-through flow control (finite buffers, multi-flit packets,
virtual channels).
"""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.faults import FaultPlan
from repro.network.flowcontrol import FlowControl
from repro.network.routing import (
    AdaptiveRouter,
    BfsRouter,
    CanonicalRouter,
    GreedyRouter,
    RouteTable,
)
from repro.network.simulator import (
    NetworkSimulator,
    ReferenceSimulator,
    VectorizedSimulator,
)
from repro.network.topology import faulted_topology, topology_of
from repro.network.traffic import PATTERNS, flit_sizes, make_traffic


def _topologies():
    return {
        "fibonacci": topology_of(("11", 6)),
        "hypercube": topology_of(hypercube(4), name="Q4"),
        "faulted": faulted_topology(topology_of(("11", 7)), 3, seed=5),
    }


TOPOLOGIES = _topologies()


def _fault_plans(topo):
    """Two plans valid on any of the test topologies: everything failed
    up front, and failures striking while traffic is in flight."""
    u, v = next(iter(topo.graph.edges()))
    n = topo.num_nodes
    return {
        "static": FaultPlan(node_faults=((0, 2 % n),), link_faults=((0, u, v),)),
        "staged": FaultPlan(node_faults=((4, 3 % n),), link_faults=((9, u, v),)),
    }


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_engines_agree_on_every_pattern(topo_name, pattern):
    topo = TOPOLOGIES[topo_name]
    for seed, window in ((0, 1), (7, 25)):
        traffic = make_traffic(pattern, topo, 150, window, seed=seed)
        ref = ReferenceSimulator(topo).run(traffic)
        vec = VectorizedSimulator(topo).run(traffic)
        assert ref == vec, (topo_name, pattern, seed, window)


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
def test_engines_agree_under_cycle_cap(topo_name):
    """Truncated runs (saturated network, hard cap) must also agree."""
    topo = TOPOLOGIES[topo_name]
    traffic = make_traffic("hotspot", topo, 200, 1, seed=3)
    for cap in (1, 5, 23):
        ref = ReferenceSimulator(topo).run(traffic, max_cycles=cap)
        vec = VectorizedSimulator(topo).run(traffic, max_cycles=cap)
        assert ref == vec, cap
        assert ref.cycles <= cap


@pytest.mark.parametrize("topo_name", ["fibonacci", "hypercube", "faulted"])
@pytest.mark.parametrize("plan_name", ["static", "staged"])
@pytest.mark.parametrize(
    "make_router", [AdaptiveRouter, BfsRouter, CanonicalRouter],
    ids=["adaptive", "bfs", "canonical"],
)
def test_engines_agree_under_faults(topo_name, plan_name, make_router):
    """The acceptance grid: >= 3 topologies x 2 fault plans x 3 routers,
    bit-identical SimResults including drop/misroute counters."""
    topo = TOPOLOGIES[topo_name]
    plan = _fault_plans(topo)[plan_name]
    router = make_router()
    for pattern, seed in (("uniform", 1), ("hotspot", 3)):
        traffic = make_traffic(pattern, topo, 200, 12, seed=seed)
        ref = ReferenceSimulator(topo, router).run(traffic, faults=plan)
        vec = VectorizedSimulator(topo, router).run(traffic, faults=plan)
        assert ref == vec, (topo_name, plan_name, router.name, pattern)
        assert ref.delivered + ref.dropped <= ref.injected


def test_engines_agree_under_faults_with_cycle_cap():
    topo = TOPOLOGIES["fibonacci"]
    plan = _fault_plans(topo)["staged"]
    traffic = make_traffic("hotspot", topo, 200, 1, seed=3)
    for cap in (1, 5, 23):
        ref = ReferenceSimulator(topo, AdaptiveRouter()).run(
            traffic, max_cycles=cap, faults=plan
        )
        vec = VectorizedSimulator(topo, AdaptiveRouter()).run(
            traffic, max_cycles=cap, faults=plan
        )
        assert ref == vec, cap
        assert ref.cycles <= cap


FLOWS = {
    "sf": ("sf", "1"),
    "wormhole": (FlowControl("wormhole", buffer_depth=2, num_vcs=2), "1-5"),
    "vct": (FlowControl("vct", buffer_depth=6, num_vcs=2), "1-5"),
}


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("flow_name", sorted(FLOWS))
@pytest.mark.parametrize(
    "make_router", [AdaptiveRouter, BfsRouter, CanonicalRouter],
    ids=["adaptive", "bfs", "canonical"],
)
@pytest.mark.parametrize("plan_name", ["none", "static", "staged"])
def test_engines_agree_in_every_switching_mode(
    topo_name, flow_name, make_router, plan_name
):
    """The flow-control acceptance grid: 3 topologies x 3 switching
    modes x 3 routers x (no faults + 2 fault plans), multi-flit traffic,
    bit-identical SimResults including the new stalled/deadlocked
    fields."""
    topo = TOPOLOGIES[topo_name]
    flow, flit_spec = FLOWS[flow_name]
    plan = None if plan_name == "none" else _fault_plans(topo)[plan_name]
    router = make_router()
    traffic = make_traffic("uniform", topo, 150, 12, seed=1)
    sizes = flit_sizes(len(traffic), flit_spec, seed=2)
    ref = ReferenceSimulator(topo, router).run(
        traffic, faults=plan, switching=flow, flits=sizes
    )
    vec = VectorizedSimulator(topo, router).run(
        traffic, faults=plan, switching=flow, flits=sizes
    )
    assert ref == vec, (topo_name, flow_name, router.name, plan_name)
    assert ref.delivered + ref.dropped + ref.stalled == ref.injected


@pytest.mark.parametrize("flow_name", ["wormhole", "vct"])
def test_engines_agree_in_flow_modes_under_cycle_cap(flow_name):
    topo = TOPOLOGIES["fibonacci"]
    flow, flit_spec = FLOWS[flow_name]
    traffic = make_traffic("hotspot", topo, 200, 1, seed=3)
    sizes = flit_sizes(len(traffic), flit_spec, seed=4)
    for cap in (1, 5, 23):
        ref = ReferenceSimulator(topo).run(
            traffic, max_cycles=cap, switching=flow, flits=sizes
        )
        vec = VectorizedSimulator(topo).run(
            traffic, max_cycles=cap, switching=flow, flits=sizes
        )
        assert ref == vec, (flow_name, cap)
        assert ref.cycles <= cap


def test_negative_injection_cycles_rejected_by_both_engines():
    """Regression: the vectorized engine used to start counting at the
    (negative) first injection cycle while the reference engine started
    at 0 and injected late -- silently diverging latencies and cycle
    counts.  Both engines now reject negative cycles up front, on every
    preparation path."""
    topo = TOPOLOGIES["fibonacci"]
    traffic = [(-3, 0, 5), (0, 1, 4), (2, 3, 6)]
    table = BfsRouter().build_table(topo, [(s, d) for _, s, d in traffic])
    plan = _fault_plans(topo)["staged"]
    for sim in (ReferenceSimulator(topo), VectorizedSimulator(topo)):
        with pytest.raises(ValueError, match="non-negative"):
            sim.run(traffic)
        with pytest.raises(ValueError, match="non-negative"):
            sim.run(traffic, route_table=table)
        with pytest.raises(ValueError, match="non-negative"):
            sim.run(traffic, faults=plan)
        with pytest.raises(ValueError, match="non-negative"):
            sim.run(traffic, switching=FlowControl("wormhole"), flits=2)


def test_faults_and_route_table_are_mutually_exclusive():
    topo = TOPOLOGIES["hypercube"]
    plan = _fault_plans(topo)["static"]
    traffic = make_traffic("uniform", topo, 50, 5, seed=0)
    table = BfsRouter().build_table(topo, [(s, d) for _, s, d in traffic])
    for sim in (ReferenceSimulator(topo), VectorizedSimulator(topo)):
        with pytest.raises(ValueError, match="route_table or faults"):
            sim.run(traffic, route_table=table, faults=plan)


def test_empty_fault_plan_is_a_no_op():
    topo = TOPOLOGIES["fibonacci"]
    traffic = make_traffic("uniform", topo, 150, 10, seed=4)
    plain = VectorizedSimulator(topo).run(traffic)
    empty = VectorizedSimulator(topo).run(traffic, faults=FaultPlan())
    assert plain == empty


def test_engines_agree_with_droppy_router():
    """GreedyRouter fails some pairs on Q_d(101): drops must match too."""
    topo = topology_of(("101", 4))
    traffic = make_traffic("uniform", topo, 120, 10, seed=2)
    ref = ReferenceSimulator(topo, GreedyRouter()).run(traffic)
    vec = VectorizedSimulator(topo, GreedyRouter()).run(traffic)
    assert ref == vec
    assert ref.delivery_rate < 1.0


def test_engines_agree_with_canonical_router():
    topo = TOPOLOGIES["fibonacci"]
    traffic = make_traffic("transpose", topo, 150, 12, seed=11)
    ref = ReferenceSimulator(topo, CanonicalRouter()).run(traffic)
    vec = VectorizedSimulator(topo, CanonicalRouter()).run(traffic)
    assert ref == vec


def test_engines_agree_on_shared_route_table():
    """Passing one prebuilt table to both engines changes nothing."""
    topo = TOPOLOGIES["hypercube"]
    traffic = make_traffic("uniform", topo, 200, 15, seed=9)
    table = BfsRouter().build_table(topo, [(s, d) for _, s, d in traffic])
    ref = ReferenceSimulator(topo).run(traffic, route_table=table)
    vec = VectorizedSimulator(topo).run(traffic, route_table=table)
    bare = VectorizedSimulator(topo).run(traffic)
    assert ref == vec == bare


def test_batched_table_matches_per_pair_routes():
    """BfsRouter.build_table must return exactly route()'s paths."""
    topo = TOPOLOGIES["faulted"]
    router = BfsRouter()
    pairs = [(s, d) for s in range(topo.num_nodes) for d in range(topo.num_nodes)]
    table = router.build_table(topo, pairs)
    for pair in pairs:
        row = table.pair_row[pair]
        expected = router.route(topo, *pair)
        if expected is None:
            assert row == -1
        else:
            assert table.route_nodes(row).tolist() == expected, pair


def test_generic_build_matches_batched_build():
    topo = TOPOLOGIES["fibonacci"]
    pairs = [(s, (s + 3) % topo.num_nodes) for s in range(topo.num_nodes)]
    generic = RouteTable.build(topo, BfsRouter(), pairs)
    batched = BfsRouter().build_table(topo, pairs)
    for pair in pairs:
        g, b = generic.pair_row[pair], batched.pair_row[pair]
        assert (g < 0) == (b < 0)
        if g >= 0:
            assert generic.route_nodes(g).tolist() == batched.route_nodes(b).tolist()


def test_default_simulator_is_vectorized():
    assert issubclass(NetworkSimulator, VectorizedSimulator)


def test_empty_traffic():
    topo = TOPOLOGIES["hypercube"]
    ref = ReferenceSimulator(topo).run([])
    vec = VectorizedSimulator(topo).run([])
    assert ref == vec
    assert ref.cycles == 1 and ref.injected == 0 and ref.latencies == ()


def test_unsorted_traffic_is_stable_sorted():
    """Triples may arrive in any order; engines sort by cycle, stably."""
    topo = TOPOLOGIES["fibonacci"]
    traffic = [(5, 0, 3), (0, 1, 4), (5, 2, 6), (2, 3, 1)]
    ref = ReferenceSimulator(topo).run(traffic)
    vec = VectorizedSimulator(topo).run(traffic)
    assert ref == vec
    assert ref.delivered == 4
