"""The rule-driven insight engine: every rule unit-tested on synthetic
records, the report format pinned against a golden fixture.

The golden pair under ``tests/network/golden/`` --
``insights_records.json`` (a deterministic hypercube-vs-Fibonacci sweep
dump) and ``insights_report.json`` (the expected ``analyze`` output,
canonically serialised) -- is the byte-level contract of ``repro
insights --json``.  Regenerate both after an *intentional* change with::

    PYTHONPATH=src:tests python -c \\
      "from network.test_insights import dump_golden_report; dump_golden_report()"
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.network.insights import (
    DEGRADATION_DELTA,
    KNEE_FACTOR,
    RULES,
    STARVATION_DELTA,
    analyze,
    knee_of,
    load_records,
    render_text,
    report_to_json,
    rule,
)
from repro.network.sweep import (
    SweepRecord,
    run_sweep,
    saturation_curves,
    write_csv,
    write_json,
)

GOLDEN = Path(__file__).parent / "golden"

# the deterministic sweep behind the golden fixture: hypercube vs
# Fibonacci cube across a load axis wide enough to cross both knees.
# The window is long enough for steady-state saturation, so the knees
# land at (not above) the analytic bounds and the same records feed the
# analytic cross-check golden (tests/analytic/test_crosscheck_golden.py)
GOLDEN_GRID = dict(
    topologies=["Q:4", "11:4"],
    patterns=("uniform",),
    loads=(0.2, 0.5, 1.0, 1.5, 2.0, 3.0),
    seeds=(0, 1),
    inject_window=64,
)


def mk(**kw) -> SweepRecord:
    """A synthetic record with healthy defaults; rules under test
    override just the columns they trigger on."""
    base = dict(
        topology="Q_3", router="bfs", pattern="uniform", collective="",
        workload="", load=0.2, seed=0, faults="", num_faults=0,
        switching="sf", num_vcs=1, buffer_depth=0, flits="1", rounds=0,
        round_bound=0, nodes=8, injected=100, delivered=100, dropped=0,
        misroutes=0, stalled=0, deadlocked=False, cycles=50, max_queue=2,
        avg_latency=2.0, p95_latency=3.0, max_latency=5, throughput=2.0,
        delivery_rate=1.0, tenants="", batch=1,
    )
    base.update(kw)
    return SweepRecord(**base)


def insights_of(report, name):
    return [i for i in report["insights"] if i["rule"] == name]


class TestKneeOf:
    def _curve(self, lat_by_load):
        records = [
            mk(load=ld, avg_latency=lat) for ld, lat in lat_by_load.items()
        ]
        [curve] = saturation_curves(records).values()
        return curve

    def test_first_load_past_the_factor(self):
        curve = self._curve({0.1: 1.0, 0.2: 2.0, 0.4: 3.5, 0.8: 9.0})
        assert knee_of(curve) == 0.4  # 3.5 > 3.0 * 1.0

    def test_flat_curve_has_no_knee(self):
        assert knee_of(self._curve({0.1: 1.0, 0.8: 2.9})) is None

    def test_short_or_degenerate_curves(self):
        assert knee_of(self._curve({0.1: 1.0})) is None
        assert knee_of(self._curve({0.1: 0.0, 0.8: 9.0})) is None

    def test_factor_is_strict(self):
        assert knee_of(
            self._curve({0.1: 1.0, 0.8: KNEE_FACTOR * 1.0})) is None


class TestSaturationKneeRule:
    def test_reports_knee_and_peak(self):
        records = [
            mk(load=0.1, avg_latency=1.0, throughput=1.0),
            mk(load=0.4, avg_latency=5.0, throughput=4.0),
        ]
        [ins] = insights_of(analyze(records), "saturation-knee")
        assert ins["severity"] == "info"
        assert ins["data"]["knee_load"] == 0.4
        assert ins["data"]["peak_throughput"] == 4.0
        assert "saturates at load 0.4" in ins["message"]

    def test_single_load_curves_skipped(self):
        report = analyze([mk(load=0.2)])
        assert insights_of(report, "saturation-knee") == []


class TestDeadlockRule:
    def test_alert_on_any_deadlocked_seed(self):
        records = [
            mk(load=0.4, seed=0, switching="wormhole", buffer_depth=2,
               deadlocked=True),
            mk(load=0.4, seed=1, switching="wormhole", buffer_depth=2),
        ]
        [ins] = insights_of(analyze(records), "deadlock")
        assert ins["severity"] == "alert"
        assert ins["data"]["max_deadlock_rate"] == 0.5
        assert ins["data"]["loads"] == [0.4]

    def test_silent_without_deadlock(self):
        assert insights_of(analyze([mk()]), "deadlock") == []


class TestCycleCapRule:
    def test_warns_on_stalled_without_deadlock(self):
        [ins] = insights_of(analyze([mk(stalled=7)]), "cycle-cap")
        assert ins["severity"] == "warning"
        assert ins["data"]["max_stalled"] == 7.0
        assert "cycle cap" in ins["message"]

    def test_deadlocked_cells_are_not_cycle_cap(self):
        report = analyze([mk(stalled=7, deadlocked=True)])
        assert insights_of(report, "cycle-cap") == []
        assert len(insights_of(report, "deadlock")) == 1


class TestFaultDegradationRule:
    def test_warns_past_delta(self):
        records = [
            mk(load=0.4, delivery_rate=1.0),
            mk(load=0.4, faults="n2@3", num_faults=1,
               delivery_rate=1.0 - DEGRADATION_DELTA - 0.05),
        ]
        [ins] = insights_of(analyze(records), "fault-degradation")
        assert ins["severity"] == "warning"
        assert ins["data"]["worst_load"] == 0.4
        assert ins["data"]["worst_delivery_drop"] == pytest.approx(
            DEGRADATION_DELTA + 0.05)

    def test_small_drops_tolerated(self):
        records = [
            mk(load=0.4, delivery_rate=1.0),
            mk(load=0.4, faults="n2@3", num_faults=1,
               delivery_rate=1.0 - DEGRADATION_DELTA / 2),
        ]
        assert insights_of(analyze(records), "fault-degradation") == []

    def test_no_baseline_no_verdict(self):
        records = [mk(load=0.4, faults="n2@3", num_faults=1,
                      delivery_rate=0.5)]
        assert insights_of(analyze(records), "fault-degradation") == []


class TestTenantStarvationRule:
    def _tenants(self, rates):
        return json.dumps([
            {"tenant": t, "injected": 100, "delivered": int(100 * r),
             "undelivered": 100 - int(100 * r), "avg_latency": 2.0,
             "p95_latency": 3.0}
            for t, r in rates.items()
        ], sort_keys=True, separators=(",", ":"))

    def test_warns_on_starved_tenant(self):
        rec = mk(workload="bg:uniform:0.2:0;fg:uniform:0.2:5", pattern="-",
                 tenants=self._tenants({"bg": 1.0 - STARVATION_DELTA - 0.1,
                                        "fg": 1.0}))
        [ins] = insights_of(analyze([rec]), "tenant-starvation")
        assert ins["severity"] == "warning"
        assert ins["data"]["starved"] == ["bg"]
        assert ins["scope"]["workload"] == rec.workload

    def test_balanced_tenants_are_silent(self):
        rec = mk(workload="a:uniform:0.2:0;b:uniform:0.2:0", pattern="-",
                 tenants=self._tenants({"a": 0.95, "b": 1.0}))
        assert insights_of(analyze([rec]), "tenant-starvation") == []

    def test_single_tenant_records_skipped(self):
        rec = mk(workload="a:uniform:0.2:0", pattern="-",
                 tenants=self._tenants({"a": 0.1}))
        assert insights_of(analyze([rec]), "tenant-starvation") == []


class TestVerdictRule:
    def _pair(self, cube_lat, fib_lat):
        out = []
        for topo, lats in (("Q_4", cube_lat), ("Q_4(11)", fib_lat)):
            out.extend(
                mk(topology=topo, load=ld, avg_latency=lat, throughput=1.0)
                for ld, lat in lats.items()
            )
        return out

    def test_hypercube_wins_on_later_knee(self):
        records = self._pair({0.2: 1.0, 0.5: 1.2, 1.0: 9.0},
                             {0.2: 1.0, 0.5: 9.0, 1.0: 9.0})
        [ins] = insights_of(analyze(records), "verdict")
        assert ins["data"]["winner"] == "Q_4"
        assert ins["data"]["family"] == "hypercube"
        assert ins["scope"]["hypercubes"] == ["Q_4"]
        assert ins["scope"]["fibonacci"] == ["Q_4(11)"]

    def test_fibonacci_wins_on_later_knee(self):
        records = self._pair({0.2: 1.0, 0.5: 9.0},
                             {0.2: 1.0, 0.5: 1.1})
        [ins] = insights_of(analyze(records), "verdict")
        assert ins["data"]["winner"] == "Q_4(11)"
        assert ins["data"]["family"] == "Fibonacci-cube"

    def test_needs_both_families(self):
        cube_only = self._pair({0.2: 1.0, 0.5: 9.0}, {})
        assert insights_of(analyze(cube_only), "verdict") == []

    def test_generalized_cubes_are_not_hypercubes(self):
        """The family split keys on the exact Q_<d> spelling: Q_4(11)
        must land on the Fibonacci side despite the Q_ prefix."""
        records = self._pair({0.2: 1.0, 0.5: 9.0}, {0.2: 1.0, 0.5: 1.1})
        [ins] = insights_of(analyze(records), "verdict")
        assert "Q_4(11)" in ins["scope"]["fibonacci"]


class TestAnalyticDivergenceRule:
    # Q_3 has theta* = 2.0, so the warning band starts at 2.5
    def _curve(self, lat_by_load, **kw):
        return [mk(load=ld, avg_latency=lat, **kw)
                for ld, lat in lat_by_load.items()]

    def test_fires_when_knee_beats_the_bound(self):
        records = self._curve({0.5: 1.0, 2.0: 2.0, 4.0: 9.0})
        [ins] = insights_of(analyze(records), "analytic-divergence")
        assert ins["severity"] == "warning"
        assert ins["data"]["analytic_bound"] == 2.0
        assert ins["data"]["knee_load"] == 4.0
        assert ins["data"]["knee_ratio"] == 2.0
        assert "more cross-bisection bandwidth" in ins["message"]

    def test_silent_when_knee_respects_the_bound(self):
        records = self._curve({0.5: 1.0, 2.0: 9.0, 4.0: 9.0})
        assert insights_of(analyze(records), "analytic-divergence") == []

    def test_silent_without_a_knee(self):
        records = self._curve({0.5: 1.0, 2.0: 1.1, 4.0: 1.2})
        assert insights_of(analyze(records), "analytic-divergence") == []

    def test_non_uniform_curves_skipped(self):
        records = self._curve({0.5: 1.0, 4.0: 9.0}, pattern="hotspot")
        assert insights_of(analyze(records), "analytic-divergence") == []

    def test_faulted_curves_skipped(self):
        records = self._curve(
            {0.5: 1.0, 4.0: 9.0}, faults="n1", num_faults=1)
        assert insights_of(analyze(records), "analytic-divergence") == []

    def test_unmodeled_topologies_skipped(self):
        records = self._curve({0.5: 1.0, 4.0: 9.0}, topology="mesh_4x4")
        assert insights_of(analyze(records), "analytic-divergence") == []


class TestReportShape:
    def test_stable_and_versioned(self):
        report = analyze([mk()])
        assert report["format"] == "repro-insights"
        assert report["version"] == 1
        assert report["rules"] == list(RULES)
        assert report["records"] == 1

    def test_deterministic_bytes_and_order_independent(self):
        records = [
            mk(load=ld, seed=s, avg_latency=1.0 + 4 * ld, throughput=ld)
            for ld in (0.2, 0.5, 1.0) for s in (0, 1)
        ]
        a = report_to_json(analyze(records))
        b = report_to_json(analyze(list(reversed(records))))
        assert a == b

    def test_severity_counts_add_up(self):
        report = analyze([mk(stalled=3), mk(seed=1, deadlocked=True)])
        counts = report["severity_counts"]
        assert sum(counts.values()) == len(report["insights"])

    def test_duplicate_rule_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("saturation-knee")(lambda curves, records: [])

    def test_render_text_orders_by_severity(self):
        report = analyze([
            mk(load=0.1, avg_latency=1.0),
            mk(load=0.4, avg_latency=9.0, stalled=2),
            mk(load=0.4, seed=1, switching="wormhole", buffer_depth=2,
               deadlocked=True),
        ])
        text = render_text(report)
        first_line, *rest = text.splitlines()
        assert "records" in first_line
        markers = [ln[:2] for ln in rest]
        assert markers == sorted(
            markers, key=["!!", " !", "  "].index)


class TestLoadRecords:
    def test_csv_and_json_agree(self, tmp_path):
        records = run_sweep(["Q:3"], patterns=("uniform",),
                            loads=(0.2, 0.4), inject_window=8)
        csv_p, json_p = tmp_path / "r.csv", tmp_path / "r.json"
        write_csv(records, str(csv_p))
        write_json(records, str(json_p))
        assert load_records(str(csv_p)) == records
        assert load_records(str(json_p)) == records

    def test_format_sniffed_not_extension(self, tmp_path):
        records = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                            inject_window=8)
        path = tmp_path / "records.csv"  # json content, csv name
        write_json(records, str(path))
        assert load_records(str(path)) == records

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"topology": "Q_3"}]')
        with pytest.raises(ValueError, match="schema"):
            load_records(str(path))
        path.write_text('{"not": "an array"}')
        with pytest.raises(ValueError, match="array"):
            load_records(str(path))
        path.write_text("who,what\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            load_records(str(path))

    def test_bad_cell_types_raise(self, tmp_path):
        records = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                            inject_window=8)
        rows = [dict(vars(r)) for r in records]
        rows[0]["injected"] = "many"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(rows))
        with pytest.raises(ValueError, match="injected"):
            load_records(str(path))


class TestGoldenReport:
    """The acceptance gate: the hypercube-vs-Fibonacci fixture must
    yield the exact saturation-knee and verdict insights, byte-for-byte."""

    def test_report_matches_golden_bytes(self):
        records = load_records(str(GOLDEN / "insights_records.json"))
        got = report_to_json(analyze(records))
        assert got == (GOLDEN / "insights_report.json").read_text()

    def test_golden_records_are_reproducible(self):
        """The checked-in records fixture is itself the deterministic
        output of GOLDEN_GRID -- the whole chain re-derives from seeds."""
        assert run_sweep(**GOLDEN_GRID) == load_records(
            str(GOLDEN / "insights_records.json"))

    def test_golden_report_has_knee_and_verdict(self):
        report = json.loads((GOLDEN / "insights_report.json").read_text())
        knees = [i for i in report["insights"]
                 if i["rule"] == "saturation-knee"]
        verdicts = [i for i in report["insights"] if i["rule"] == "verdict"]
        assert {i["scope"]["topology"] for i in knees} == {"Q_4", "Q_4(11)"}
        assert all(i["data"]["knee_load"] is not None for i in knees)
        [verdict] = verdicts
        assert verdict["scope"]["hypercubes"] == ["Q_4"]
        assert verdict["scope"]["fibonacci"] == ["Q_4(11)"]
        assert verdict["data"]["winner"]

    def test_cli_json_output_is_the_golden_report(self, capsys):
        assert main(["insights", str(GOLDEN / "insights_records.json"),
                     "--json"]) == 0
        assert capsys.readouterr().out == (
            GOLDEN / "insights_report.json").read_text()

    def test_cli_text_output(self, capsys):
        assert main(["insights",
                     str(GOLDEN / "insights_records.json")]) == 0
        out = capsys.readouterr().out
        assert "saturation-knee" in out and "verdict" in out


def dump_golden_report() -> None:
    """Regenerate both golden insight fixtures (after an intentional
    rule or schema change only)."""
    records = run_sweep(**GOLDEN_GRID)
    write_json(records, str(GOLDEN / "insights_records.json"))
    (GOLDEN / "insights_report.json").write_text(
        report_to_json(analyze(records)))
