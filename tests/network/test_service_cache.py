"""Unit suite for the content-addressed result cache.

Three contracts under test:

- **key canonicalisation** -- equivalent specs (axes that do not matter
  for the simulation) collide on one key; distinct simulations never
  share one; and the keys themselves are pinned by a golden file
  (``tests/network/golden/point_keys.json``) asserted across the CI
  python matrix, so canonicalisation drift (dict ordering, float repr)
  fails the build instead of silently splitting the cache;
- **robustness** -- corrupt, truncated, schema-skewed or misplaced
  entries read as misses that delete the bad file and re-simulate; a
  cache can cost a re-run, never a wrong record;
- **resume semantics** -- ``run_sweep(cache=...)`` fills on the way
  out, a warm repeat simulates nothing, a *grown* grid simulates only
  its new cells, and ``cache=None`` bypasses the store entirely.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.network.service import ResultCache, point_key
from repro.network.service.cache import CACHE_VERSION, canonical_encoding
from repro.network.sweep import PointSpec, run_sweep

GOLDEN = Path(__file__).parent / "golden"

# the axis tour the golden key file pins: every PointSpec field is
# exercised by at least one spec, including a repr-sensitive float load
GOLDEN_KEY_SPECS = [
    PointSpec(topology="Q:3"),
    PointSpec(topology="Q:3", load=0.4, seed=1),
    PointSpec(topology="Q:3", load=1 / 3, inject_window=16, max_cycles=500),
    PointSpec(topology="11:5", router="adaptive", pattern="tornado",
              load=0.3, faults="n2@3"),
    PointSpec(topology="Q:4", switching="wormhole", num_vcs=2,
              buffer_depth=4, flits="1-4", load=0.25),
    PointSpec(topology="11:5", collective="broadcast", pattern="-",
              load=1.0, switching="vct", num_vcs=2, buffer_depth=2,
              flits="2"),
    PointSpec(topology="Q:4", pattern="-", load=0.5,
              workload="bg:uniform:0.2:0;fg:hotspot:0.1:2"),
    PointSpec(topology="Q:4", pattern="-", load=1.0,
              workload="trace:0123456789abcdef"),
]

SMALL_GRID = dict(
    topologies=["Q:3"], patterns=("uniform",), loads=(0.2, 0.4),
    seeds=(0, 1), inject_window=8,
)


class TestPointKey:
    def test_keys_match_golden(self):
        """The cache-key stability gate: these exact hashes are asserted
        on every python of the CI matrix.  A diff here means the
        canonical encoding drifted -- which would split the cache
        between interpreter versions -- or that the PointSpec schema
        changed, in which case bump CACHE_VERSION and regenerate::

            PYTHONPATH=src:tests python -c \\
              "from network.test_service_cache import dump_golden_keys; dump_golden_keys()"
        """
        golden = json.loads((GOLDEN / "point_keys.json").read_text())
        assert golden["cache_version"] == CACHE_VERSION
        assert [point_key(s) for s in GOLDEN_KEY_SPECS] == golden["keys"]

    def test_key_is_sha256_hex(self):
        key = point_key(PointSpec(topology="Q:3"))
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")

    def test_encoding_is_version_stamped_and_sorted(self):
        doc = json.loads(canonical_encoding(PointSpec(topology="Q:3")))
        assert doc["version"] == CACHE_VERSION
        assert list(doc) == sorted(doc)

    def test_sf_specs_collide_across_flow_axes(self):
        """Store-and-forward ignores VCs/buffers/flits: every variant is
        the same simulation, so every variant is the same key."""
        base = PointSpec(topology="Q:3", switching="sf")
        for variant in (
            replace(base, num_vcs=3),
            replace(base, buffer_depth=9),
            replace(base, flits="2-4"),
            replace(base, num_vcs=4, buffer_depth=2, flits="8"),
        ):
            assert point_key(variant) == point_key(base)

    def test_collective_specs_collide_across_pattern_and_load(self):
        base = PointSpec(topology="Q:3", collective="broadcast",
                         pattern="-", load=1.0)
        for variant in (
            replace(base, pattern="uniform", load=0.7),
            replace(base, pattern="tornado", load=0.1),
        ):
            assert point_key(variant) == point_key(base)

    def test_every_meaningful_axis_changes_the_key(self):
        base = PointSpec(topology="Q:3", switching="wormhole", num_vcs=2,
                         buffer_depth=4, flits="2")
        distinct = [
            base,
            replace(base, topology="11:3"),
            replace(base, router="ecube"),
            replace(base, pattern="tornado"),
            replace(base, load=0.21),
            replace(base, seed=1),
            replace(base, inject_window=32),
            replace(base, max_cycles=50000),
            replace(base, faults="n2@3"),
            replace(base, switching="vct"),
            replace(base, num_vcs=3),
            replace(base, buffer_depth=5),
            replace(base, flits="3"),
            replace(base, collective="broadcast", pattern="-", load=1.0),
            replace(base, workload="t:uniform:0.3:0", pattern="-"),
            replace(base, workload="t:uniform:0.3:1", pattern="-"),
            replace(base, workload="trace:0123456789abcdef", pattern="-",
                    load=1.0),
        ]
        keys = [point_key(s) for s in distinct]
        assert len(set(keys)) == len(keys)

    def test_workload_specs_collide_across_pattern_but_not_load(self):
        """Workload points normalise the pattern axis away (the tenants
        carry their own patterns) but keep load: it scales every
        tenant, so each load is a distinct simulation."""
        base = PointSpec(topology="Q:3", workload="t:uniform:0.2:0",
                         pattern="-", load=0.5)
        assert point_key(replace(base, pattern="tornado")) == point_key(base)
        assert point_key(replace(base, load=0.7)) != point_key(base)

    def test_equivalent_workload_spellings_collide(self):
        """Canonicalisation folds spelling variants (default priority,
        explicit rate=1, float formatting) onto one key."""
        a = PointSpec(topology="Q:3", workload="t:uniform:0.2")
        b = PointSpec(topology="Q:3", workload="t:uniform:0.20:0;rate=1")
        assert point_key(a) == point_key(b)


def dump_golden_keys() -> None:
    """Regenerate the golden key fixture (after an intentional
    CACHE_VERSION bump only)."""
    doc = {
        "cache_version": CACHE_VERSION,
        "keys": [point_key(s) for s in GOLDEN_KEY_SPECS],
    }
    (GOLDEN / "point_keys.json").write_text(json.dumps(doc, indent=2) + "\n")


class TestResultCacheStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8)
        assert cache.get(spec) is None
        cache.put(spec, record)
        assert cache.get(spec) == record
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert len(cache) == 1

    def test_hit_normalises_the_batch_column(self, tmp_path):
        """The batch column describes the producing run; a cache hit
        always reports 1 (every payload column untouched)."""
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8, batch=8)
        cache.put(spec, replace(record, batch=5))
        assert cache.get(spec) == replace(record, batch=1)

    def test_equivalent_spec_hits_the_same_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8)
        cache.put(spec, record)
        assert cache.get(replace(spec, num_vcs=7, flits="2")) == record

    @pytest.mark.parametrize("damage", [
        b"", b"{", b'{"key": "nope"}', b"not json at all \xff",
    ])
    def test_corrupt_entry_is_a_miss_and_is_deleted(self, tmp_path, damage):
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_bytes(damage)
        assert cache.get(spec) is None
        assert not path.exists()  # bad entry evicted, next put is clean
        assert cache.misses == 1

    def test_truncated_entry_recovers(self, tmp_path):
        """A partially-written entry (e.g. a pre-atomic-write crash
        artefact) must read as a miss and a re-put must repair it."""
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8)
        cache.put(spec, record)
        path = cache.path_for(spec)
        path.write_bytes(path.read_bytes()[:-20])
        assert cache.get(spec) is None
        cache.put(spec, record)
        assert cache.get(spec) == record

    def test_schema_skew_is_a_miss(self, tmp_path):
        """An entry written under a different SweepRecord layout (field
        added/removed) must not mis-fill columns: it reads as corrupt."""
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8)
        cache.put(spec, record)
        path = cache.path_for(spec)
        doc = json.loads(path.read_text())
        del doc["record"]["throughput"]
        path.write_text(json.dumps(doc))
        assert cache.get(spec) is None

    @pytest.mark.parametrize("field_name, bad_value", [
        ("avg_latency", "3.5"),   # string where a float belongs
        ("avg_latency", 3),       # int where a float belongs (CSV drift)
        ("delivered", 7.0),       # float where an int belongs
        ("delivered", True),      # bool must not pass for int
        ("deadlocked", 0),        # int must not pass for bool
        ("topology", None),
    ])
    def test_type_corrupt_entry_is_a_miss(self, tmp_path, field_name, bad_value):
        """A schema-shaped entry with a wrong-typed value (bit rot, a
        hand-edited file) must read as corrupt, not as a hit."""
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8)
        cache.put(spec, record)
        path = cache.path_for(spec)
        doc = json.loads(path.read_text())
        doc["record"][field_name] = bad_value
        path.write_text(json.dumps(doc))
        assert cache.get(spec) is None
        assert not path.exists()
        cache.put(spec, record)
        assert cache.get(spec) == record

    def test_misfiled_entry_is_a_miss(self, tmp_path):
        """An entry whose stored key does not match its address (renamed
        or copied file) is rejected."""
        cache = ResultCache(tmp_path)
        spec = PointSpec(topology="Q:3", inject_window=8)
        other = PointSpec(topology="Q:3", load=0.4, inject_window=8)
        [record] = run_sweep(["Q:3"], patterns=("uniform",), loads=(0.2,),
                             inject_window=8)
        cache.put(spec, record)
        target = cache.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(cache.path_for(spec).read_bytes())
        assert cache.get(other) is None

    def test_clear_evicts_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = run_sweep(cache=cache, **SMALL_GRID)
        assert len(cache) == len(records) == 4
        assert cache.clear() == 4
        assert len(cache) == 0
        assert cache.get(PointSpec(topology="Q:3", inject_window=8)) is None

    def test_entries_live_under_a_version_directory(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(cache=cache, **SMALL_GRID)
        assert (tmp_path / f"v{CACHE_VERSION}").is_dir()
        assert all(
            p.relative_to(tmp_path).parts[0] == f"v{CACHE_VERSION}"
            for p in tmp_path.rglob("*.json")
        )


class TestRunSweepCache:
    def test_results_bit_identical_to_uncached(self, tmp_path):
        uncached = run_sweep(**SMALL_GRID)
        cache = ResultCache(tmp_path)
        cold = run_sweep(cache=cache, **SMALL_GRID)
        warm = run_sweep(cache=cache, **SMALL_GRID)
        assert cold == uncached
        assert warm == uncached

    def test_warm_repeat_simulates_zero_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(cache=cache, **SMALL_GRID)
        assert cache.stores == 4
        run_sweep(cache=cache, **SMALL_GRID)
        assert cache.stores == 4  # nothing new simulated
        assert cache.hits == 4

    def test_grown_grid_simulates_only_missing_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(cache=cache, **SMALL_GRID)
        grown = dict(SMALL_GRID, loads=(0.2, 0.4, 0.6), seeds=(0, 1, 2))
        records = run_sweep(cache=cache, **grown)
        assert len(records) == 9
        assert cache.stores == 4 + 5  # only the 5 new (load, seed) cells
        assert records == run_sweep(**grown)

    def test_batched_cold_run_fills_the_cache_identically(self, tmp_path):
        """batch=K changes only the bookkeeping column, so a warm read
        after a batched fill returns the canonical batch=1 records."""
        cache = ResultCache(tmp_path)
        cold = run_sweep(cache=cache, batch=4, **SMALL_GRID)
        assert {r.batch for r in cold} == {4}
        warm = run_sweep(cache=cache, **SMALL_GRID)
        assert warm == [replace(r, batch=1) for r in cold]
        assert cache.stores == 4 and cache.hits == 4

    def test_no_cache_bypass_touches_no_disk(self, tmp_path):
        run_sweep(cache=None, **SMALL_GRID)
        assert list(tmp_path.iterdir()) == []
