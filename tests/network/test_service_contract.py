"""Wire-format contract tests for the sweep service (the CI
``service-contract`` job).

The PR 5 golden fixtures under ``tests/network/golden/`` stopped being
mere snapshots when the service shipped: they are the service's wire
contract.  A real :class:`~repro.network.service.SweepServer` is started
on an ephemeral port, the golden sweep grid is submitted through the
real client over the real socket, and the CSV/JSON written from the
*streamed* records must be byte-identical to the fixtures -- proving
that a record survives grid expansion, the worker pool, the cache, JSON
framing and client reassembly without a single bit of drift.  The same
grid is then re-submitted to pin the resume contract: zero points
simulated the second time.
"""

import asyncio
import json
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.cli import main
from repro.network.service import (
    PROTOCOL_VERSION,
    ResultCache,
    ServiceError,
    SweepClient,
    SweepServer,
)
from repro.network.sweep import run_sweep, saturation_curves, write_csv, write_json

GOLDEN = Path(__file__).parent / "golden"

# the exact grid of the PR 5 golden fixtures (test_sweep_golden.py's
# SMALL_SWEEP_ARGS), as expand_grid keywords
GOLDEN_GRID = dict(
    topologies=["Q:3"], patterns=["uniform", "hotspot"],
    loads=[0.2, 0.4], seeds=[0, 1], inject_window=8,
)


@contextmanager
def running_server(**kwargs):
    """A live server on an ephemeral port, torn down with the test."""
    server = SweepServer(port=0, **kwargs)
    ready = threading.Event()

    async def _main():
        await server.start()
        ready.set()
        await server.serve_until_shutdown()

    thread = threading.Thread(target=lambda: asyncio.run(_main()), daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "server failed to start"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "server failed to shut down"


@pytest.fixture
def served(tmp_path):
    with running_server(cache=ResultCache(tmp_path / "cache")) as server:
        yield server, SweepClient(port=server.port, timeout=120)


def test_streamed_csv_is_byte_identical_to_golden(served, tmp_path):
    """THE wire contract: CSV written from records streamed over the
    socket equals the golden fixture byte for byte."""
    _, client = served
    records = client.submit(GOLDEN_GRID)
    out = tmp_path / "streamed.csv"
    write_csv(records, str(out))
    assert out.read_bytes() == (GOLDEN / "sweep_small.csv").read_bytes()


def test_streamed_json_is_byte_identical_to_golden(served, tmp_path):
    _, client = served
    records = client.submit(GOLDEN_GRID)
    out = tmp_path / "streamed.json"
    write_json(records, str(out))
    assert out.read_bytes() == (GOLDEN / "sweep_small.json").read_bytes()


def test_one_shot_cli_json_matches_the_same_golden(tmp_path):
    """The service and the one-shot CLI share one wire format: the CLI's
    --json output is the very fixture the service is held to.
    Regenerate after an intentional schema change with::

        repro sweep --topo Q:3 --patterns uniform,hotspot \\
            --loads 0.2,0.4 --seeds 0,1 --window 8 \\
            --json tests/network/golden/sweep_small.json
    """
    out = tmp_path / "out.json"
    assert main([
        "sweep", "--topo", "Q:3", "--patterns", "uniform,hotspot",
        "--loads", "0.2,0.4", "--seeds", "0,1", "--window", "8",
        "--json", str(out),
    ]) == 0
    assert out.read_bytes() == (GOLDEN / "sweep_small.json").read_bytes()


def test_resubmitted_grid_simulates_zero_points(served):
    """The resume contract: every cell of a re-submitted grid is served
    from the cache."""
    _, client = served
    events = []
    client.submit(GOLDEN_GRID)
    records = client.submit(GOLDEN_GRID, on_event=events.append)
    assert records == run_sweep(**GOLDEN_GRID)
    done = events[-1]
    assert done["event"] == "done"
    assert done["simulated"] == 0
    assert done["cached"] == done["points"] == len(records)
    assert all(e["cached"] for e in events if e["event"] == "record")


def test_grown_grid_simulates_only_new_cells(served):
    _, client = served
    client.submit(GOLDEN_GRID)
    grown = dict(GOLDEN_GRID, loads=[0.2, 0.4, 0.6])
    events = []
    records = client.submit(grown, on_event=events.append)
    assert records == run_sweep(**grown)
    done = events[-1]
    assert done["cached"] == 8 and done["simulated"] == 4


def test_process_pool_server_streams_the_same_records(tmp_path):
    """`repro serve --processes`: the simulation callables must pickle
    into the process pool, while cache reads/writes stay in-process so
    the hit/store counters and resume semantics survive."""
    cache = ResultCache(tmp_path / "cache")
    with running_server(cache=cache, use_processes=True, workers=2) as server:
        client = SweepClient(port=server.port, timeout=120)
        records = client.submit(GOLDEN_GRID)
        assert records == run_sweep(**GOLDEN_GRID)
        assert cache.stores == len(records)
        events = []
        client.submit(GOLDEN_GRID, on_event=events.append)
        done = events[-1]
        assert done["simulated"] == 0
        assert done["cached"] == done["points"] == len(records)


def test_without_cache_every_submit_simulates(tmp_path):
    with running_server(cache=None) as server:
        client = SweepClient(port=server.port, timeout=120)
        client.submit(GOLDEN_GRID)
        events = []
        client.submit(GOLDEN_GRID, on_event=events.append)
        done = events[-1]
        assert done["simulated"] == done["points"] and done["cached"] == 0


def test_batched_submit_matches_unbatched_modulo_batch_column(served):
    from dataclasses import replace

    _, client = served
    records = client.submit(GOLDEN_GRID, batch=8)
    assert [replace(r, batch=1) for r in records] == run_sweep(**GOLDEN_GRID)
    assert {r.batch for r in records} == {8}


def test_mixed_axes_grid_round_trips_the_wire(served):
    """Fault, flow-control and collective columns all survive the wire:
    records and derived curve keys equal the in-process harness."""
    _, client = served
    grid = dict(
        topologies=["11:4"], patterns=["uniform"], loads=[0.2],
        seeds=[0], faults=["", "n2@3"], switching=["sf", "wormhole"],
        vcs=[2], buffers=[4], flits=["1-4"],
        collectives=["", "broadcast"], inject_window=8,
    )
    records = client.submit(grid)
    direct = run_sweep(**grid)
    assert records == direct
    assert sorted(saturation_curves(records)) == sorted(saturation_curves(direct))


def test_two_tenant_grid_round_trips_the_wire_byte_for_byte(served, tmp_path):
    """A multi-tenant workload survives the socket: per-tenant QoS
    arbitration, the tenant-stats JSON column and the canonicalised
    workload spelling all stream back byte-identical to the in-process
    harness, cold and from cache."""
    _, client = served
    grid = dict(
        topologies=["Q:4", "11:4"], patterns=["uniform"], loads=[0.5, 1.0],
        seeds=[0, 1], inject_window=8,
        workloads=["bg:uniform:0.2;fg:broadcast:0.4:2;rate=1"],
    )
    records = client.submit(grid)
    direct = run_sweep(**grid)
    assert records == direct
    # the tenant column actually carries per-tenant stats over the wire
    assert all(r.tenants for r in records)
    assert all(r.workload == "bg:uniform:0.2:0;fg:broadcast:0.4:2" for r in records)
    streamed, local = tmp_path / "streamed.csv", tmp_path / "local.csv"
    write_csv(records, str(streamed))
    write_csv(direct, str(local))
    assert streamed.read_bytes() == local.read_bytes()
    # warm re-submit: all from cache, still byte-identical
    events = []
    cached = client.submit(grid, on_event=events.append)
    assert cached == direct
    done = events[-1]
    assert done["simulated"] == 0 and done["cached"] == len(records)


def test_jobs_op_reports_history(served):
    server, client = served
    client.submit(GOLDEN_GRID)
    client.submit(GOLDEN_GRID)
    jobs = client.jobs()
    assert [j["job"] for j in jobs] == [1, 2]
    assert all(j["state"] == "done" for j in jobs)
    assert [j["simulated"] for j in jobs] == [8, 0]
    assert [j["cached"] for j in jobs] == [0, 8]
    assert all(j["topologies"] == ["Q:3"] for j in jobs)


def test_ping_handshake(served):
    server, client = served
    pong = client.ping()
    assert pong["protocol"] == PROTOCOL_VERSION
    assert str(server.cache.root) == pong["cache"]


def test_bad_grid_is_rejected_with_the_cli_error_text(served):
    _, client = served
    with pytest.raises(ServiceError, match="unknown traffic pattern"):
        client.submit(dict(topologies=["Q:3"], patterns=["nope"]))
    with pytest.raises(ServiceError, match="at least one topology"):
        client.submit({})
    with pytest.raises(ServiceError, match="unknown grid keys"):
        client.submit(dict(topologies=["Q:3"], cycles=3))
    with pytest.raises(ServiceError, match="bad tenant token"):
        client.submit(dict(topologies=["Q:3"], workloads=["fg:nope"]))
    # trace references resolve against client-local files; the wire
    # carries no trace payloads, so the server refuses them up front
    with pytest.raises(ServiceError, match="cannot be submitted over the wire"):
        client.submit(dict(topologies=["Q:3"], workloads=["trace:0123456789abcdef"]))


def test_failed_submission_leaves_the_server_serving(served):
    _, client = served
    with pytest.raises(ServiceError):
        client.submit(dict(topologies=["bogus"]))
    assert client.submit(GOLDEN_GRID) == run_sweep(**GOLDEN_GRID)
    assert client.jobs()  # and introspection still answers


def test_unknown_op_is_an_error(served):
    _, client = served
    with pytest.raises(ServiceError, match="unknown op"):
        client._one({"op": "frobnicate"}, "never")


def test_record_events_carry_grid_indices(served):
    """Streaming may land out of grid order; the index field is what
    lets the client reassemble run_sweep's exact record list."""
    _, client = served
    events = []
    client.submit(GOLDEN_GRID, on_event=events.append)
    indices = [e["index"] for e in events if e["event"] == "record"]
    assert sorted(indices) == list(range(8))


class TestCliFrontends:
    """`repro serve` runs as a real subprocess; `repro submit` /
    `repro jobs` drive it through the installed CLI entry points."""

    @pytest.fixture
    def serve_proc(self, tmp_path):
        import os
        import re
        import subprocess
        import sys
        import time

        repo = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, text=True, cwd=str(repo), env=env,
        )
        try:
            deadline = time.monotonic() + 30
            line = proc.stdout.readline()
            assert time.monotonic() < deadline and line, "server never announced"
            port = int(re.search(r":(\d+) \(cache:", line).group(1))
            yield port
        finally:
            try:
                SweepClient(port=port).shutdown()
            except OSError:
                proc.kill()
            proc.wait(timeout=30)

    def test_submit_and_jobs_subcommands(self, serve_proc, tmp_path, capsys):
        port = serve_proc
        out = tmp_path / "cli.csv"
        args = [
            "--port", str(port), "--topo", "Q:3", "--patterns",
            "uniform,hotspot", "--loads", "0.2,0.4", "--seeds", "0,1",
            "--window", "8",
        ]
        assert main(["submit", *args, "--csv", str(out)]) == 0
        assert out.read_bytes() == (GOLDEN / "sweep_small.csv").read_bytes()
        assert "8 point(s), 0 from cache, 8 simulated" in capsys.readouterr().out

        assert main(["submit", *args]) == 0
        assert "8 from cache, 0 simulated" in capsys.readouterr().out

        assert main(["jobs", "--port", str(port)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3  # header + two jobs, both done
        assert all("done" in ln for ln in lines[1:])

    def test_submit_against_no_server_fails_cleanly(self, capsys):
        # an ephemeral port nothing listens on: connection refused, exit 2
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            free_port = s.getsockname()[1]
        assert main(["submit", "--port", str(free_port), "--topo", "Q:3"]) == 2
        assert "cannot reach server" in capsys.readouterr().err
        assert main(["jobs", "--port", str(free_port)]) == 2


def test_oversized_request_line_is_an_error_event(monkeypatch):
    """A request line overrunning the frame limit gets an error reply
    and a clean close, not a dropped connection."""
    import socket

    from repro.network.service import server as server_mod

    monkeypatch.setattr(server_mod, "_MAX_REQUEST_BYTES", 1024)
    with running_server(cache=None) as server:
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=30
        ) as sock:
            sock.sendall(b"x" * 4096 + b"\n")
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
    msg = json.loads(data.decode().splitlines()[0])
    assert msg["event"] == "error"
    assert "frame limit" in msg["message"]


def test_wire_frames_are_newline_delimited_json(served):
    """The raw protocol: one JSON object per line, readable without the
    client library (the documented ``nc``-compatibility claim)."""
    import socket

    server, _ = served
    with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
        sock.sendall(b'{"op":"ping"}\n')
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
    lines = data.decode().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["event"] == "pong"
