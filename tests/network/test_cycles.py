"""Even-cycle spectrum (reference [22] extension)."""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.network.cycles import (
    cycle_spectrum,
    find_cycle_of_length,
    has_even_cycles_everywhere,
)

from tests.conftest import complete_graph, cycle_graph, path_graph


class TestFindCycle:
    def test_cycle_graph_has_only_its_length(self):
        g = cycle_graph(7)
        assert find_cycle_of_length(g, 7) is not None
        assert find_cycle_of_length(g, 5) is None
        assert find_cycle_of_length(g, 3) is None

    def test_returned_cycle_is_valid(self):
        g = hypercube(3)
        cyc = find_cycle_of_length(g, 6)
        assert cyc is not None and len(cyc) == 6
        assert len(set(cyc)) == 6
        for a, b in zip(cyc, cyc[1:]):
            assert g.has_edge(a, b)
        assert g.has_edge(cyc[-1], cyc[0])

    def test_tree_has_no_cycles(self):
        assert find_cycle_of_length(path_graph(6), 4) is None

    def test_too_long_or_short(self):
        g = cycle_graph(5)
        assert find_cycle_of_length(g, 2) is None
        assert find_cycle_of_length(g, 6) is None

    def test_budget(self):
        with pytest.raises(RuntimeError):
            find_cycle_of_length(hypercube(4), 16, node_budget=3)


class TestSpectrum:
    def test_k4_spectrum(self):
        assert cycle_spectrum(complete_graph(4)) == [3, 4]

    def test_hypercube_spectrum_even_only(self):
        spec = cycle_spectrum(hypercube(3))
        assert spec == [4, 6, 8]

    def test_bipartite_graphs_have_no_odd_cycles(self):
        spec = cycle_spectrum(generalized_fibonacci_cube("11", 5).graph())
        assert all(L % 2 == 0 for L in spec)


class TestReference22:
    """Q_d(1^s) contains cycles of every even length ([22])."""

    @pytest.mark.parametrize("s,d", [(2, 4), (2, 5), (2, 6), (3, 4), (3, 5), (4, 5)])
    def test_even_cycles_everywhere(self, s, d):
        g = generalized_fibonacci_cube("1" * s, d).graph()
        assert has_even_cycles_everywhere(g), (s, d)

    def test_counterpoint_path_fails(self):
        # Q_d(10) is a path: no cycles at all
        g = generalized_fibonacci_cube("10", 6).graph()
        assert not has_even_cycles_everywhere(g)
