"""Seeded property tests for the traffic layer.

PR 3 asserted the ``[0, inject_window)`` contract on a small fixed grid
inside ``test_traffic.py``; this file promotes it to a standalone
property suite: for every registered pattern, 50 seeded-random
configurations (topology x packet count x window x seed) must satisfy
the generator contract -- injection cycles inside the window, sorted
output, in-range distinct endpoints, exact packet count -- and be
deterministic under their seed.  The configurations are drawn from one
fixed meta-seed, so a failure is reproducible from the config index
alone.
"""

import random

import pytest

from repro.network.sweep import parse_topology
from repro.network.traffic import PATTERNS, make_traffic

META_SEED = 0xF1B0
NUM_CONFIGS = 50

TOPO_SPECS = ("Q:3", "Q:5", "11:5", "11:7", "101:5", "1010:6")


def _configs():
    """The 50 shared random configurations (deterministic, index-stable)."""
    rng = random.Random(META_SEED)
    return [
        {
            "topology": rng.choice(TOPO_SPECS),
            "packets": rng.randint(0, 250),
            "window": rng.randint(1, 80),
            "seed": rng.randrange(10**6),
        }
        for _ in range(NUM_CONFIGS)
    ]


CONFIGS = _configs()


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_pattern_contract_across_random_configs(pattern):
    """Every generated triple honours the documented contract on every
    sampled configuration: ``0 <= cycle < inject_window``, sorted by
    cycle, ``src != dst``, both in range, exactly ``num_packets``
    triples."""
    for i, cfg in enumerate(CONFIGS):
        topo = parse_topology(cfg["topology"])
        out = make_traffic(
            pattern, topo, cfg["packets"], cfg["window"], seed=cfg["seed"]
        )
        ctx = (pattern, i, cfg)
        assert len(out) == cfg["packets"], ctx
        assert out == sorted(out, key=lambda t: t[0]), ctx
        n = topo.num_nodes
        for cycle, src, dst in out:
            assert 0 <= cycle < cfg["window"], ctx
            assert 0 <= src < n and 0 <= dst < n, ctx
            assert src != dst, ctx


@pytest.mark.parametrize("pattern", sorted(PATTERNS))
def test_pattern_determinism_under_seed(pattern):
    """The seed fully determines the traffic: regenerating any sampled
    configuration is bit-identical, and on a non-trivial configuration
    a different seed must change the output."""
    for i, cfg in enumerate(CONFIGS):
        topo = parse_topology(cfg["topology"])
        a = make_traffic(pattern, topo, cfg["packets"], cfg["window"], seed=cfg["seed"])
        b = make_traffic(pattern, topo, cfg["packets"], cfg["window"], seed=cfg["seed"])
        assert a == b, (pattern, i, cfg)
    # seed sensitivity, on a config big enough that collisions cannot
    # happen by chance (tiny windows can legitimately collide)
    topo = parse_topology("11:6")
    base = make_traffic(pattern, topo, 200, 64, seed=0)
    assert base != make_traffic(pattern, topo, 200, 64, seed=1), pattern
