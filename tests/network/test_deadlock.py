"""Channel-dependency graphs and Dally--Seitz deadlock freedom."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.network.deadlock import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.network.faults import FaultPlan
from repro.network.routing import AdaptiveRouter, BfsRouter, CanonicalRouter
from repro.network.topology import Topology, topology_of


def assert_valid_cycle(cycle, deps):
    """The returned list must be a genuine closed walk of the CDG with no
    lead-in tail: consecutive elements are arcs and it closes on itself."""
    assert cycle is not None and len(cycle) >= 2
    assert cycle[0] == cycle[-1]
    for a, b in zip(cycle, cycle[1:]):
        assert b in deps.get(a, ()), (a, b)


class ClockwiseRouter:
    """Deliberately deadlock-prone: always routes clockwise on a ring."""

    name = "clockwise"

    def route(self, topo, s, t):
        n = topo.graph.num_vertices
        path = [s]
        while path[-1] != t:
            path.append((path[-1] + 1) % n)
        return path


def ring(n: int) -> Topology:
    g = Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
    g.set_labels([str(i) for i in range(n)])
    return Topology(f"C{n}", g)


class TestCdg:
    def test_short_routes_create_no_dependencies(self):
        topo = topology_of(("11", 2))  # a path: all routes length <= 2
        deps = channel_dependency_graph(topo, BfsRouter(), pairs=[(0, 1), (1, 0)])
        assert deps == {}

    def test_dependencies_follow_routes(self):
        topo = ring(6)
        deps = channel_dependency_graph(topo, ClockwiseRouter(), pairs=[(0, 2)])
        assert deps == {(0, 1): {(1, 2)}}

    def test_cycle_reconstruction(self):
        topo = ring(5)
        deps = channel_dependency_graph(topo, ClockwiseRouter())
        cycle = find_dependency_cycle(deps)
        assert cycle is not None
        # consecutive cycle elements are CDG arcs
        for a, b in zip(cycle, cycle[1:]):
            assert b in deps[a]

    def test_acyclic_returns_none(self):
        assert find_dependency_cycle({(0, 1): {(1, 2)}, (1, 2): set()}) is None


class TestCycleReconstruction:
    """Direct unit tests of find_dependency_cycle's back-edge
    reconstruction and trimming, on crafted CDGs."""

    def test_self_loop(self):
        deps = {(0, 1): {(0, 1)}}
        cycle = find_dependency_cycle(deps)
        assert_valid_cycle(cycle, deps)
        assert cycle == [(0, 1), (0, 1)]

    def test_two_cycle(self):
        deps = {(0, 1): {(1, 0)}, (1, 0): {(0, 1)}}
        cycle = find_dependency_cycle(deps)
        assert_valid_cycle(cycle, deps)
        assert len(cycle) == 3

    def test_lead_in_tail_is_trimmed(self):
        """A path feeding into a 3-cycle: the returned walk must contain
        only the cycle, not the entry tail."""
        t1, t2 = (9, 8), (8, 7)
        c1, c2, c3 = (0, 1), (1, 2), (2, 0)
        deps = {t1: {t2}, t2: {c1}, c1: {c2}, c2: {c3}, c3: {c1}}
        cycle = find_dependency_cycle(deps)
        assert_valid_cycle(cycle, deps)
        assert t1 not in cycle and t2 not in cycle
        assert set(cycle) == {c1, c2, c3}
        assert len(cycle) == 4

    def test_cycle_behind_acyclic_branches(self):
        """DFS must not report a cross edge to an already-finished branch
        as a cycle."""
        deps = {
            (0, 1): {(1, 2), (1, 3)},
            (1, 2): {(2, 4)},
            (1, 3): {(2, 4)},   # cross edge to a BLACK node: no cycle
            (2, 4): set(),
        }
        assert find_dependency_cycle(deps) is None
        deps[(2, 4)] = {(0, 1)}  # now a genuine back edge exists
        cycle = find_dependency_cycle(deps)
        assert_valid_cycle(cycle, deps)

    def test_disjoint_components_second_has_the_cycle(self):
        deps = {
            (0, 1): {(1, 2)},
            (1, 2): set(),
            (5, 6): {(6, 5)},
            (6, 5): {(5, 6)},
        }
        cycle = find_dependency_cycle(deps)
        assert_valid_cycle(cycle, deps)
        assert set(cycle) <= {(5, 6), (6, 5)}


class TestDeadlockFreedom:
    @pytest.mark.parametrize("spec", [("11", 5), ("111", 5), ("11", 6)])
    def test_canonical_routing_deadlock_free_on_cubes(self, spec):
        """Dimension-ordered (canonical) routing is deadlock-free on the
        1^s family -- the Hsu-Liu claim, machine-checked."""
        assert is_deadlock_free(topology_of(spec), CanonicalRouter())

    def test_canonical_on_hypercube(self):
        assert is_deadlock_free(topology_of(hypercube(4), name="Q4"), CanonicalRouter())

    def test_clockwise_ring_deadlocks(self):
        assert not is_deadlock_free(ring(6), ClockwiseRouter())

    def test_bfs_on_ring_with_tiebreak_is_free(self):
        # our BFS router's deterministic tie-break happens to avoid the cycle
        assert is_deadlock_free(ring(4), BfsRouter())


class TestAdaptiveUnderFaultMasks:
    """CDG analysis of the fault-aware detour rule on masked views
    (Topology.with_faults): pure node faults leave the canonical order
    intact, while link faults force misroute detours whose dependencies
    can close a cycle -- the boundary, machine-checked."""

    @staticmethod
    def live_pairs(topo, plan):
        dead = plan.dead_nodes_at(0)
        n = topo.num_nodes
        return [
            (s, t)
            for s in range(n)
            for t in range(n)
            if s != t and s not in dead and t not in dead
        ]

    @pytest.mark.parametrize("spec", ["n2", "n9", "n16"])
    def test_acyclic_under_node_fault_masks(self, spec):
        topo = topology_of(("11", 6))
        plan = FaultPlan.parse(spec, num_nodes=topo.num_nodes).validate(topo)
        view = topo.with_faults(plan, at_cycle=0)
        assert is_deadlock_free(view, AdaptiveRouter(), self.live_pairs(topo, plan))

    def test_link_fault_detours_can_close_a_cycle(self):
        """Misrouting around a dead link is what breaks deadlock freedom:
        the cycle the analysis finds is a real closed dependency walk."""
        topo = topology_of(("11", 6))
        plan = FaultPlan.parse("l0-1", num_nodes=topo.num_nodes).validate(topo)
        view = topo.with_faults(plan, at_cycle=0)
        pairs = self.live_pairs(topo, plan)
        deps = channel_dependency_graph(view, AdaptiveRouter(), pairs)
        cycle = find_dependency_cycle(deps)
        assert_valid_cycle(cycle, deps)
        assert not is_deadlock_free(view, AdaptiveRouter(), pairs)
