"""Channel-dependency graphs and Dally--Seitz deadlock freedom."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.network.deadlock import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.network.routing import BfsRouter, CanonicalRouter
from repro.network.topology import Topology, topology_of


class ClockwiseRouter:
    """Deliberately deadlock-prone: always routes clockwise on a ring."""

    name = "clockwise"

    def route(self, topo, s, t):
        n = topo.graph.num_vertices
        path = [s]
        while path[-1] != t:
            path.append((path[-1] + 1) % n)
        return path


def ring(n: int) -> Topology:
    g = Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
    g.set_labels([str(i) for i in range(n)])
    return Topology(f"C{n}", g)


class TestCdg:
    def test_short_routes_create_no_dependencies(self):
        topo = topology_of(("11", 2))  # a path: all routes length <= 2
        deps = channel_dependency_graph(topo, BfsRouter(), pairs=[(0, 1), (1, 0)])
        assert deps == {}

    def test_dependencies_follow_routes(self):
        topo = ring(6)
        deps = channel_dependency_graph(topo, ClockwiseRouter(), pairs=[(0, 2)])
        assert deps == {(0, 1): {(1, 2)}}

    def test_cycle_reconstruction(self):
        topo = ring(5)
        deps = channel_dependency_graph(topo, ClockwiseRouter())
        cycle = find_dependency_cycle(deps)
        assert cycle is not None
        # consecutive cycle elements are CDG arcs
        for a, b in zip(cycle, cycle[1:]):
            assert b in deps[a]

    def test_acyclic_returns_none(self):
        assert find_dependency_cycle({(0, 1): {(1, 2)}, (1, 2): set()}) is None


class TestDeadlockFreedom:
    @pytest.mark.parametrize("spec", [("11", 5), ("111", 5), ("11", 6)])
    def test_canonical_routing_deadlock_free_on_cubes(self, spec):
        """Dimension-ordered (canonical) routing is deadlock-free on the
        1^s family -- the Hsu-Liu claim, machine-checked."""
        assert is_deadlock_free(topology_of(spec), CanonicalRouter())

    def test_canonical_on_hypercube(self):
        assert is_deadlock_free(topology_of(hypercube(4), name="Q4"), CanonicalRouter())

    def test_clockwise_ring_deadlocks(self):
        assert not is_deadlock_free(ring(6), ClockwiseRouter())

    def test_bfs_on_ring_with_tiebreak_is_free(self):
        # our BFS router's deterministic tie-break happens to avoid the cycle
        assert is_deadlock_free(ring(4), BfsRouter())
