"""Deeper simulator scenarios: hotspots, drops, ordering, saturation."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.routing import BfsRouter, GreedyRouter
from repro.network.simulator import NetworkSimulator, uniform_traffic
from repro.network.topology import topology_of


@pytest.fixture(scope="module")
def q4():
    return topology_of(hypercube(4), name="Q4")


class TestHotspot:
    def test_hotspot_latency_exceeds_uniform(self, q4):
        """All-to-one traffic serializes at the sink's links; uniform
        traffic of the same volume spreads out."""
        n = q4.num_nodes
        hot = [(0, s, 0) for s in range(1, n)]
        uni = uniform_traffic(q4, n - 1, 1, seed=8)
        sim = NetworkSimulator(q4)
        res_hot = sim.run(hot)
        res_uni = sim.run(uni)
        assert res_hot.avg_latency > res_uni.avg_latency

    def test_hotspot_still_delivers_everything(self, q4):
        n = q4.num_nodes
        res = NetworkSimulator(q4).run([(0, s, 0) for s in range(1, n)])
        assert res.delivered == n - 1

    def test_sink_degree_bounds_drain_rate(self, q4):
        """The sink has 4 links, so the last of 15 packets needs at least
        ceil(15/4) + distance-ish cycles."""
        n = q4.num_nodes
        res = NetworkSimulator(q4).run([(0, s, 0) for s in range(1, n)])
        assert res.max_latency >= (n - 1) / 4


class TestDrops:
    def test_undeliverable_packets_count_as_injected(self):
        """With a router that fails for some pairs, delivery_rate < 1."""
        topo = topology_of(("101", 4))
        router = GreedyRouter()
        # find a failing pair
        bad = None
        n = topo.num_nodes
        for s in range(n):
            for t in range(n):
                if s != t and router.route(topo, s, t) is None:
                    bad = (s, t)
                    break
            if bad:
                break
        assert bad is not None
        res = NetworkSimulator(topo, router).run([(0, *bad)])
        assert res.injected == 1
        assert res.delivered == 0
        assert res.delivery_rate == 0.0


class TestDeterminismAndAccounting:
    def test_same_traffic_same_result(self, q4):
        traffic = uniform_traffic(q4, 80, 40, seed=21)
        a = NetworkSimulator(q4).run(traffic)
        b = NetworkSimulator(q4).run(traffic)
        assert a == b

    def test_latency_count_matches_delivered(self, q4):
        traffic = uniform_traffic(q4, 60, 30, seed=4)
        res = NetworkSimulator(q4).run(traffic)
        assert len(res.latencies) == res.delivered

    def test_zero_hop_packet(self, q4):
        # a route of length 1 (src == dst is never generated; simulate by
        # a one-hop route): latency is exactly 1 under no contention
        res = NetworkSimulator(q4).run([(0, 0, 1)])
        assert res.latencies == (1,)

    def test_staggered_injection_reduces_queueing(self, q4):
        n = q4.num_nodes
        burst = [(0, s, 0) for s in range(1, n)]
        spread = [(3 * s, s, 0) for s in range(1, n)]
        res_burst = NetworkSimulator(q4).run(burst)
        res_spread = NetworkSimulator(q4).run(spread)
        assert res_spread.max_queue <= res_burst.max_queue

    def test_max_cycles_cap(self, q4):
        traffic = uniform_traffic(q4, 50, 10, seed=2)
        res = NetworkSimulator(q4).run(traffic, max_cycles=2)
        assert res.delivered < 50
        assert res.cycles <= 2


class TestRouterComposition:
    def test_bfs_latency_lower_bounds_hold_everywhere(self, q4):
        from repro.graphs.traversal import all_pairs_distances

        dist = all_pairs_distances(q4.graph)
        traffic = uniform_traffic(q4, 40, 100, seed=11)
        sim = NetworkSimulator(q4, BfsRouter())
        res = sim.run(traffic)
        assert res.delivered == 40
        # with injections spread over 100 cycles and 40 packets, contention
        # is light; every latency is at least the graph distance
        assert all(lat >= 1 for lat in res.latencies)
