"""Direct unit tests for the Hamiltonian path/cycle search.

Previously exercised only indirectly (one gray-code usage); here the
search gets its own contract: existence on the hypercube family,
known-non-Hamiltonian Fibonacci cubes, node-budget exhaustion, and
edge-by-edge validation of every returned path.
"""

import pytest

from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.network.hamilton import find_hamiltonian_cycle, find_hamiltonian_path
from repro.network.topology import topology_of


def _assert_valid_path(g: Graph, path):
    """A Hamiltonian path visits every vertex once over real edges."""
    assert sorted(path) == list(range(g.num_vertices))
    for u, v in zip(path, path[1:]):
        assert g.has_edge(u, v), (u, v)


class TestHypercubes:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_q_d_has_a_hamiltonian_path(self, d):
        g = hypercube(d)
        path = find_hamiltonian_path(g)
        assert path is not None
        _assert_valid_path(g, path)

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_q_d_has_a_hamiltonian_cycle(self, d):
        """Gray codes close: Q_d is Hamiltonian for every d >= 2."""
        g = hypercube(d)
        cycle = find_hamiltonian_cycle(g)
        assert cycle is not None
        _assert_valid_path(g, cycle)
        assert g.has_edge(cycle[-1], cycle[0])

    def test_q_1_has_no_cycle(self):
        assert find_hamiltonian_cycle(hypercube(1)) is None


class TestFibonacciCubes:
    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_gamma_d_has_a_hamiltonian_path(self, d):
        """The Liu--Hsu--Chung claim: Q_d(11) always has a path."""
        g = topology_of(("11", d)).graph
        path = find_hamiltonian_path(g)
        assert path is not None
        _assert_valid_path(g, path)

    @pytest.mark.parametrize("d", [2, 3])
    def test_small_gamma_d_has_no_hamiltonian_cycle(self, d):
        """Known non-Hamiltonian members: Gamma_2 is a 3-vertex path and
        Gamma_3 has 5 vertices -- odd order in a bipartite graph, so no
        Hamiltonian cycle can exist; the exact search must prove it."""
        g = topology_of(("11", d)).graph
        assert g.num_vertices in (3, 5)
        assert find_hamiltonian_cycle(g) is None


class TestNonHamiltonian:
    def test_star_graph_has_no_path(self):
        g = Graph(5)
        for leaf in range(1, 5):
            g.add_edge(0, leaf)
        assert find_hamiltonian_path(g) is None
        assert find_hamiltonian_cycle(g) is None


class TestBudget:
    def test_exhausted_budget_raises_runtime_error(self):
        g = hypercube(4)
        with pytest.raises(RuntimeError, match="node budget"):
            find_hamiltonian_path(g, node_budget=1)
        with pytest.raises(RuntimeError, match="node budget"):
            find_hamiltonian_cycle(g, node_budget=1)

    def test_ample_budget_is_not_consumed_across_calls(self):
        g = hypercube(3)
        assert find_hamiltonian_path(g, node_budget=10_000) is not None
        assert find_hamiltonian_path(g, node_budget=10_000) is not None


class TestDegenerate:
    def test_empty_graph(self):
        assert find_hamiltonian_path(Graph(0)) is None
        assert find_hamiltonian_cycle(Graph(0)) is None

    def test_single_vertex_path(self):
        assert find_hamiltonian_path(Graph(1)) == [0]
        assert find_hamiltonian_cycle(Graph(1)) is None

    def test_two_vertices(self):
        g = Graph(2)
        g.add_edge(0, 1)
        path = find_hamiltonian_path(g)
        assert path is not None and sorted(path) == [0, 1]
        assert find_hamiltonian_cycle(g) is None
