"""CLI integration tests (driving the real entry point in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_classify(self):
        args = build_parser().parse_args(["classify", "1100", "7"])
        assert args.factor == "1100" and args.d == 7


class TestCommands:
    def test_classify_decided(self, capsys):
        assert main(["classify", "1100", "7"]) == 0
        out = capsys.readouterr().out
        assert "NOT iso" in out
        assert "Theorem 3.3(ii)" in out

    def test_classify_unknown_then_bruteforce(self, capsys):
        main(["classify", "10110", "6"])
        assert "undecided" in capsys.readouterr().out
        main(["classify", "10110", "6", "--bruteforce"])
        assert "iso in Q_d" in capsys.readouterr().out

    def test_counts(self, capsys):
        assert main(["counts", "110", "10"]) == 0
        out = capsys.readouterr().out
        assert "= 232" in out  # F_13 - 1 vertices
        assert "= 743" in out  # edges

    def test_structure(self, capsys):
        assert main(["structure", "11", "5"]) == 0
        out = capsys.readouterr().out
        assert "max degree = diameter = d): True" in out

    def test_table1_matches_paper(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
        assert "11010" in out

    def test_network(self, capsys):
        assert main(["network", "11", "4"]) == 0
        out = capsys.readouterr().out
        assert "router" in out and "broadcast rounds" in out

    def test_ladder(self, capsys):
        assert main(["ladder", "4"]) == 0
        out = capsys.readouterr().out
        assert "5 rungs" in out
        assert "not a partial cube" in out
