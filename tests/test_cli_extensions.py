"""CLI tests for the extension subcommands."""

from repro.cli import main


class TestMultifactor:
    def test_basic(self, capsys):
        assert main(["multifactor", "111,000", "5"]) == 0
        out = capsys.readouterr().out
        assert "vertices: 16" in out
        assert "isometric in Q: False" in out

    def test_single_factor_degenerates(self, capsys):
        assert main(["multifactor", "11", "5"]) == 0
        out = capsys.readouterr().out
        assert "vertices: 13" in out
        assert "isometric in Q: True" in out


class TestCubepoly:
    def test_gamma6(self, capsys):
        assert main(["cubepoly", "11", "6"]) == 0
        out = capsys.readouterr().out
        assert "c_0 = 21" in out
        assert "c_1 = 38" in out
        assert "c_2 = 22" in out
        assert "c_3 = 4" in out


class TestSpectrum:
    def test_gamma5_even_everywhere(self, capsys):
        assert main(["spectrum", "11", "5"]) == 0
        out = capsys.readouterr().out
        assert "[4, 6, 8, 10, 12]" in out
        assert "True" in out

    def test_path_has_no_cycles(self, capsys):
        assert main(["spectrum", "10", "5"]) == 0
        out = capsys.readouterr().out
        assert "none (acyclic)" in out


class TestWiener:
    def test_isometric_cube_matches_cuts(self, capsys):
        assert main(["wiener", "11", "6"]) == 0
        out = capsys.readouterr().out
        assert "matches: isometric" in out

    def test_non_isometric_undercounts(self, capsys):
        assert main(["wiener", "101", "4"]) == 0
        out = capsys.readouterr().out
        assert "NOT isometric" in out
        assert "W(Q_4(101)) = 144" in out
