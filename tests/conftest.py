"""Shared fixtures and naive reference implementations.

Every reference here is deliberately the dumbest possible correct
implementation (filter all 2^d words, O(n^3) medians, ...) so the tests
cross-validate the real engines against something with no shared code or
shared cleverness.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import List, Set

import pytest

from repro.graphs.core import Graph

# -- tier-1 wall-clock budget -------------------------------------------------
#
# The suite is the repo's tier-1 gate and must stay fast enough to run on
# every push.  When REPRO_TIER1_BUDGET_SECONDS is set (CI sets it; local
# runs default to no budget) a session that takes longer FAILS, so suite
# growth is a red build instead of slow rot.  Heavy tests carry the
# ``heavy`` marker and can be shed first: ``pytest -m "not heavy"``.

_SESSION_T0 = 0.0


def pytest_sessionstart(session):
    global _SESSION_T0
    _SESSION_T0 = time.monotonic()


def pytest_sessionfinish(session, exitstatus):
    budget = float(os.environ.get("REPRO_TIER1_BUDGET_SECONDS", "0") or 0)
    if budget <= 0:
        return
    elapsed = time.monotonic() - _SESSION_T0
    if elapsed > budget:
        print(
            f"\nFAILED tier-1 wall-clock budget: suite took {elapsed:.1f}s "
            f"(budget {budget:.0f}s). Trim or mark tests 'heavy' "
            "(see --durations report above)."
        )
        session.exitstatus = 1


def naive_all_words(d: int) -> List[str]:
    return ["".join(bits) for bits in itertools.product("01", repeat=d)]


def naive_avoiding(f: str, d: int) -> List[str]:
    return [w for w in naive_all_words(d) if f not in w]


def naive_hamming(a: str, b: str) -> int:
    return sum(x != y for x, y in zip(a, b))


def naive_count_edges(f: str, d: int) -> int:
    words = set(naive_avoiding(f, d))
    count = 0
    for w in words:
        for i in range(d):
            flipped = w[:i] + ("1" if w[i] == "0" else "0") + w[i + 1 :]
            if flipped in words:
                count += 1
    return count // 2


def naive_count_squares(f: str, d: int) -> int:
    words: Set[str] = set(naive_avoiding(f, d))
    count = 0
    for w in words:
        zeros = [i for i in range(d) if w[i] == "0"]
        for a in range(len(zeros)):
            for b in range(a + 1, len(zeros)):
                i, j = zeros[a], zeros[b]
                w_i = w[:i] + "1" + w[i + 1 :]
                w_j = w[:j] + "1" + w[j + 1 :]
                w_ij = w_i[:j] + "1" + w_i[j + 1 :]
                if w_i in words and w_j in words and w_ij in words:
                    count += 1
    return count


def path_graph(n: int) -> Graph:
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def complete_graph(n: int) -> Graph:
    return Graph.from_edges(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    def idx(r, c):
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
    return Graph.from_edges(rows * cols, edges)


def star_graph(leaves: int) -> Graph:
    return Graph.from_edges(leaves + 1, [(0, i + 1) for i in range(leaves)])


@pytest.fixture
def p4() -> Graph:
    return path_graph(4)


@pytest.fixture
def c6() -> Graph:
    return cycle_graph(6)


@pytest.fixture
def k4() -> Graph:
    return complete_graph(4)
