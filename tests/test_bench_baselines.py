"""The benchmark-trajectory gate: compare_baselines.py and the
checked-in baselines under ``benchmarks/baselines/``.

The CI benchmark-regression job times four suites and compares each
fresh JSON against its checked-in baseline with a normalized-share
tolerance band (see ``benchmarks/compare_baselines.py``).  These tests
keep that gate honest: the comparison logic is unit-tested on synthetic
regressions, and the baselines themselves are checked for integrity so
a truncated or stale file fails tier-1 rather than silently neutering
the CI gate.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
BASELINES = REPO / "benchmarks" / "baselines"
BASELINE_FILES = (
    "BENCH_network.json",
    "BENCH_flowcontrol.json",
    "BENCH_collectives.json",
    "BENCH_batch.json",
)


@pytest.fixture(scope="module")
def cb():
    """The compare_baselines module, loaded by path (benchmarks/ is not
    a package)."""
    path = REPO / "benchmarks" / "compare_baselines.py"
    spec = importlib.util.spec_from_file_location("compare_baselines", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["compare_baselines"] = mod
    spec.loader.exec_module(mod)
    return mod


def _means(**kv):
    return {f"bench.py::{k}": float(v) for k, v in kv.items()}


class TestCompare:
    def test_identical_runs_pass(self, cb):
        base = _means(a=1.0, b=3.0)
        rows, missing, new = cb.compare(base, dict(base), 0.25, False)
        assert [r[4] for r in rows] == ["ok", "ok"]
        assert missing == [] and new == []

    def test_uniform_slowdown_passes_normalized(self, cb):
        """A 2x-slower machine changes no share: the normalized gate
        must not fire on runner speed."""
        base = _means(a=1.0, b=3.0)
        fresh = {k: v * 2.0 for k, v in base.items()}
        rows, _, _ = cb.compare(base, fresh, 0.25, False)
        assert all(r[4] == "ok" for r in rows)
        # ... but the absolute gate (local use) does fire
        rows_abs, _, _ = cb.compare(base, fresh, 0.25, True)
        assert all(r[4] == "FAIL" for r in rows_abs)

    def test_single_workload_regression_fails(self, cb):
        """One benchmark ballooning relative to its peers trips the
        gate even though the suite ran on an unknown machine."""
        base = _means(a=1.0, b=1.0, c=1.0)
        fresh = _means(a=3.0, b=1.0, c=1.0)  # a: 33% -> 60% share
        rows, _, _ = cb.compare(base, fresh, 0.25, False)
        verdicts = {r[0].split("::")[1]: r[4] for r in rows}
        assert verdicts["a"] == "FAIL"
        assert verdicts["b"] == "ok" and verdicts["c"] == "ok"

    def test_regression_within_tolerance_passes(self, cb):
        base = _means(a=1.0, b=1.0)
        fresh = _means(a=1.3, b=1.0)  # a: 50% -> 56.5% share, +13%
        rows, _, _ = cb.compare(base, fresh, 0.25, False)
        assert all(r[4] == "ok" for r in rows)

    def test_missing_benchmark_is_a_failure(self, cb):
        rows, missing, new = cb.compare(
            _means(a=1.0, b=1.0), _means(a=1.0), 0.25, False
        )
        assert missing == ["bench.py::b"]
        assert new == []

    def test_new_benchmark_passes_with_notice(self, cb):
        rows, missing, new = cb.compare(
            _means(a=1.0), _means(a=1.0, b=1.0), 0.25, False
        )
        assert missing == []
        assert new == ["bench.py::b"]

    def test_main_exit_codes(self, cb, tmp_path):
        def dump(name, means):
            doc = {"benchmarks": [
                {"fullname": k, "stats": {"mean": v}} for k, v in means.items()
            ]}
            p = tmp_path / name
            p.write_text(json.dumps(doc))
            return str(p)

        base = dump("base.json", _means(a=1.0, b=1.0, c=1.0))
        good = dump("good.json", _means(a=1.1, b=1.0, c=1.0))
        bad = dump("bad.json", _means(a=9.0, b=1.0, c=1.0))
        assert cb.main([base, good]) == 0
        assert cb.main([base, bad]) == 1
        assert cb.main([base, bad, "--tolerance", "9"]) == 0

    def test_failure_message_names_the_offending_files(
        self, cb, tmp_path, capsys
    ):
        """CI loops the comparison over four suites; a verdict that does
        not say WHICH fresh/baseline pair failed is useless."""

        def dump(name, means):
            doc = {"benchmarks": [
                {"fullname": k, "stats": {"mean": v}} for k, v in means.items()
            ]}
            p = tmp_path / name
            p.write_text(json.dumps(doc))
            return str(p)

        base = dump("base.json", _means(a=1.0, b=1.0))
        bad = dump("BENCH_bad.json", _means(a=9.0, b=1.0))
        assert cb.main([base, bad]) == 1
        err = capsys.readouterr().err
        assert "BENCH_bad.json" in err and "base.json" in err
        assert cb.main([base, base]) == 0
        assert "base.json" in capsys.readouterr().out

    def test_unreadable_or_empty_inputs_name_the_file(self, cb, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(SystemExit, match="nope.json"):
            cb.load_means(str(missing))
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(SystemExit, match="garbage.json"):
            cb.load_means(str(garbage))
        empty = tmp_path / "empty.json"
        empty.write_text('{"benchmarks": []}')
        with pytest.raises(SystemExit, match="empty.json"):
            cb.load_means(str(empty))


class TestCheckedInBaselines:
    @pytest.mark.parametrize("name", BASELINE_FILES)
    def test_baseline_parses_and_has_benchmarks(self, cb, name):
        means = cb.load_means(str(BASELINES / name))
        assert means, f"{name} has no benchmarks"
        assert all(v > 0 for v in means.values()), name

    def test_batch_baseline_covers_the_speedup_gates(self, cb):
        """The batch baseline must keep tracking both batched-speedup
        acceptance gates (sf and wormhole grids)."""
        means = cb.load_means(str(BASELINES / "BENCH_batch.json"))
        names = {k.split("::")[-1] for k in means}
        assert "test_bench_sweep_batched_speedup" in names
        assert "test_bench_sweep_batched_flow_speedup" in names

    def test_baseline_compares_clean_against_itself(self, cb):
        for name in BASELINE_FILES:
            means = cb.load_means(str(BASELINES / name))
            rows, missing, new = cb.compare(means, dict(means), 0.25, False)
            assert not missing and not new
            assert all(r[4] == "ok" for r in rows), name
